package dom

import (
	"strings"
	"testing"
)

func samplePage() *Document {
	root := NewElement("body")
	root.W, root.H = 1024, 768

	banner := NewElement("img").SetAttr("id", "banner").SetAttr("src", "/banner.png")
	banner.X, banner.Y, banner.W, banner.H = 100, 50, 728, 90

	thumb := NewElement("img").SetAttr("id", "thumb")
	thumb.X, thumb.Y, thumb.W, thumb.H = 10, 200, 120, 90

	frame := NewElement("iframe").SetAttr("id", "adframe").SetAttr("src", "http://ads.com/f")
	frame.X, frame.Y, frame.W, frame.H = 100, 400, 300, 250

	overlay := NewElement("div").SetAttr("id", "overlay")
	overlay.X, overlay.Y, overlay.W, overlay.H = 0, 0, 1024, 768
	overlay.Style.Transparent = true
	overlay.Style.ZIndex = 9999

	content := NewElement("div").SetAttr("id", "content")
	content.X, content.Y, content.W, content.H = 0, 0, 1024, 768

	root.Append(content.Append(banner, thumb, frame), overlay)
	return &Document{URL: "http://pub.com/", Title: "pub", Root: root}
}

func TestClickablesSortedByArea(t *testing.T) {
	d := samplePage()
	c := d.Clickables()
	if len(c) != 4 {
		t.Fatalf("clickables = %d", len(c))
	}
	// overlay (1024*768) > iframe (75000) > banner (65520) > thumb.
	wantOrder := []string{"overlay", "adframe", "banner", "thumb"}
	for i, want := range wantOrder {
		if c[i].ID() != want {
			t.Fatalf("clickables[%d] = %q, want %q", i, c[i].ID(), want)
		}
	}
}

func TestClickablesSkipZeroArea(t *testing.T) {
	root := NewElement("body")
	img := NewElement("img") // zero size
	root.Append(img)
	d := &Document{Root: root}
	if got := d.Clickables(); len(got) != 0 {
		t.Fatalf("clickables = %d", len(got))
	}
}

func TestClickablesTieBreakDocumentOrder(t *testing.T) {
	root := NewElement("body")
	a := NewElement("img").SetAttr("id", "a")
	a.W, a.H = 10, 10
	b := NewElement("img").SetAttr("id", "b")
	b.W, b.H = 10, 10
	root.Append(a, b)
	d := &Document{Root: root}
	c := d.Clickables()
	if c[0].ID() != "a" || c[1].ID() != "b" {
		t.Fatal("tie not broken by document order")
	}
}

func TestHitTestTopmostWins(t *testing.T) {
	d := samplePage()
	// The transparent overlay has the highest z-index and covers all.
	el := d.HitTest(400, 450)
	if el == nil || el.ID() != "overlay" {
		t.Fatalf("HitTest = %v", el)
	}
}

func TestHitTestOutside(t *testing.T) {
	d := samplePage()
	if el := d.HitTest(5000, 5000); el != nil {
		t.Fatalf("HitTest outside = %v", el)
	}
}

func TestHitTestLaterOrderWinsOnEqualZ(t *testing.T) {
	root := NewElement("body")
	root.W, root.H = 100, 100
	a := NewElement("div").SetAttr("id", "a")
	a.W, a.H = 100, 100
	b := NewElement("div").SetAttr("id", "b")
	b.W, b.H = 100, 100
	root.Append(a, b)
	d := &Document{Root: root}
	if el := d.HitTest(50, 50); el.ID() != "b" {
		t.Fatalf("HitTest = %q", el.ID())
	}
}

func TestFindAndFindAll(t *testing.T) {
	d := samplePage()
	if el := d.Root.Find("adframe"); el == nil || el.Tag != "iframe" {
		t.Fatalf("Find = %v", el)
	}
	if el := d.Root.Find("missing"); el != nil {
		t.Fatal("Find returned non-nil for missing id")
	}
	imgs := d.Root.FindAll("img")
	if len(imgs) != 2 {
		t.Fatalf("FindAll(img) = %d", len(imgs))
	}
}

func TestGeometryHelpers(t *testing.T) {
	e := NewElement("div")
	e.X, e.Y, e.W, e.H = 10, 20, 30, 40
	if e.Area() != 1200 {
		t.Fatalf("Area = %d", e.Area())
	}
	if !e.Contains(10, 20) || !e.Contains(39, 59) || e.Contains(40, 20) || e.Contains(10, 60) {
		t.Fatal("Contains boundary wrong")
	}
	cx, cy := e.Center()
	if cx != 25 || cy != 40 {
		t.Fatalf("Center = %d,%d", cx, cy)
	}
}

func TestSerializeContainsEverything(t *testing.T) {
	d := samplePage()
	d.Scripts = []ScriptRef{
		{Src: "http://adnet.com/v3/serve.js"},
		{Code: "let zoneNative = 42;"},
	}
	d.MetaRefresh = &MetaRefresh{DelaySeconds: 3, Target: "http://next.com/"}
	d.Links = []string{"http://friend.com/"}
	s := d.Serialize()
	for _, want := range []string{
		"<title>pub</title>",
		`src="http://adnet.com/v3/serve.js"`,
		"let zoneNative = 42;",
		`content="3;url=http://next.com/"`,
		`href="http://friend.com/"`,
		`id="banner"`,
		`src="/banner.png"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized page missing %q", want)
		}
	}
}

func TestSerializeDeterministicAttrOrder(t *testing.T) {
	e := NewElement("img").SetAttr("z", "1").SetAttr("a", "2").SetAttr("m", "3")
	d := &Document{Root: e}
	s1, s2 := d.Serialize(), d.Serialize()
	if s1 != s2 {
		t.Fatal("serialization not deterministic")
	}
	if strings.Index(s1, `a="2"`) > strings.Index(s1, `z="1"`) {
		t.Fatal("attributes not sorted")
	}
}

func TestWalkPrune(t *testing.T) {
	d := samplePage()
	count := 0
	d.Root.Walk(func(e *Element) bool {
		count++
		return e.ID() != "content" // prune content subtree
	})
	// body + content + overlay = 3 (children of content pruned).
	if count != 3 {
		t.Fatalf("visited %d", count)
	}
}

func TestCountElements(t *testing.T) {
	d := samplePage()
	if n := d.CountElements(); n != 6 {
		t.Fatalf("CountElements = %d", n)
	}
}

func TestSetAttrOnNilMap(t *testing.T) {
	e := &Element{Tag: "div"}
	e.SetAttr("k", "v")
	if e.Attr("k") != "v" {
		t.Fatal("SetAttr on nil map failed")
	}
}
