package websearch

import (
	"fmt"
	"testing"
)

func TestSearchFindsSnippet(t *testing.T) {
	e := NewEngine()
	e.Index("a.com", `<script>let _pcWidget = {z:1};</script>`, 0)
	e.Index("b.com", `<script>let other = 1;</script>`, 0)
	e.Index("c.com", `something let _pcWidget = {z:9}; more`, 0)
	got := e.Search("let _pcWidget =")
	if len(got) != 2 || got[0] != "a.com" || got[1] != "c.com" {
		t.Fatalf("Search = %v", got)
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	e := NewEngine()
	if got := e.Search("anything"); len(got) != 0 {
		t.Fatalf("Search = %v", got)
	}
}

func TestSearchAnyDedupes(t *testing.T) {
	e := NewEngine()
	e.Index("a.com", "tokenA tokenB", 0)
	e.Index("b.com", "tokenB", 0)
	got := e.SearchAny([]string{"tokenA", "tokenB"})
	if len(got) != 2 {
		t.Fatalf("SearchAny = %v", got)
	}
}

func TestRankOrdering(t *testing.T) {
	e := NewEngine()
	e.Index("popular.com", "snippet", 500)
	e.Index("mid.com", "snippet", 9000)
	e.Index("unranked.com", "snippet", 0)
	e.Index("top.com", "snippet", 3)
	got := e.Search("snippet")
	want := []string{"top.com", "popular.com", "mid.com", "unranked.com"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Rank("top.com") != 3 || e.Rank("unranked.com") != 0 {
		t.Fatal("Rank lookup wrong")
	}
}

func TestIndexReplace(t *testing.T) {
	e := NewEngine()
	e.Index("a.com", "old-token", 0)
	e.Index("a.com", "new-token", 0)
	if got := e.Search("old-token"); len(got) != 0 {
		t.Fatalf("stale source still indexed: %v", got)
	}
	if got := e.Search("new-token"); len(got) != 1 {
		t.Fatalf("new source missing: %v", got)
	}
	if e.Size() != 1 {
		t.Fatalf("Size = %d", e.Size())
	}
}

func TestLargeIndex(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5000; i++ {
		src := "filler"
		if i%10 == 0 {
			src = "needle-token filler"
		}
		e.Index(fmt.Sprintf("h%05d.com", i), src, 0)
	}
	got := e.Search("needle-token")
	if len(got) != 500 {
		t.Fatalf("found %d", len(got))
	}
}
