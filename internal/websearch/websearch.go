// Package websearch simulates the source-code search engine
// (publicwww.com in the paper) used to "reverse" ad-network invariant
// features into lists of publisher websites (Section 3.1), and again to
// expand coverage after new ad networks are discovered (Section 4.4).
//
// The index maps each host to the source text of its front page plus a
// popularity rank, mirroring the two things the paper obtains from
// PublicWWW: the publisher list for a code snippet query, and popularity
// rankings ("52 publisher websites were ranked among the top 10,000").
package websearch

import (
	"sort"
	"strings"
	"sync"
)

// Engine is the searchable source-code index.
type Engine struct {
	mu    sync.RWMutex
	pages map[string]string // host -> page source
	rank  map[string]int    // host -> popularity rank (1 = most popular)
}

// NewEngine returns an empty index.
func NewEngine() *Engine {
	return &Engine{pages: map[string]string{}, rank: map[string]int{}}
}

// Index stores (or replaces) the source text for a host with its
// popularity rank (0 = unranked).
func (e *Engine) Index(host, source string, rank int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pages[host] = source
	if rank > 0 {
		e.rank[host] = rank
	}
}

// Source returns the indexed source text for a host ("" when absent) —
// the cached copy an analyst inspects when deriving new invariants.
func (e *Engine) Source(host string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pages[host]
}

// Size returns the number of indexed hosts.
func (e *Engine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.pages)
}

// Search returns all hosts whose indexed source contains the exact
// snippet, sorted by popularity rank then name — the PublicWWW query the
// paper issues per invariant feature.
func (e *Engine) Search(snippet string) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []string
	for host, src := range e.pages {
		if strings.Contains(src, snippet) {
			out = append(out, host)
		}
	}
	e.sortByRankLocked(out)
	return out
}

// SearchAny returns hosts matching at least one of the snippets, deduped.
func (e *Engine) SearchAny(snippets []string) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for host, src := range e.pages {
		for _, sn := range snippets {
			if strings.Contains(src, sn) {
				if !seen[host] {
					seen[host] = true
					out = append(out, host)
				}
				break
			}
		}
	}
	e.sortByRankLocked(out)
	return out
}

// Rank returns the popularity rank for a host (0 when unranked).
func (e *Engine) Rank(host string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rank[host]
}

func (e *Engine) sortByRankLocked(hosts []string) {
	sort.Slice(hosts, func(i, j int) bool {
		ri, rj := e.rank[hosts[i]], e.rank[hosts[j]]
		switch {
		case ri == 0 && rj == 0:
			return hosts[i] < hosts[j]
		case ri == 0:
			return false
		case rj == 0:
			return true
		case ri != rj:
			return ri < rj
		}
		return hosts[i] < hosts[j]
	})
}
