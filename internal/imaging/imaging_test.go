package imaging

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewIsWhite(t *testing.T) {
	im := New(10, 10)
	c := im.At(5, 5)
	if c != RGB(255, 255, 255) {
		t.Fatalf("pixel = %+v", c)
	}
}

func TestSetAt(t *testing.T) {
	im := New(4, 4)
	im.Set(2, 3, RGB(10, 20, 30))
	if got := im.At(2, 3); got != RGB(10, 20, 30) {
		t.Fatalf("At = %+v", got)
	}
	// Out-of-bounds writes are ignored, reads return black.
	im.Set(-1, 0, RGB(1, 1, 1))
	im.Set(4, 0, RGB(1, 1, 1))
	if got := im.At(99, 99); got != (Color{}) {
		t.Fatalf("OOB At = %+v", got)
	}
}

func TestFillRectClipped(t *testing.T) {
	im := New(8, 8)
	im.FillRect(-5, -5, 100, 100, Gray(0))
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if im.At(x, y) != Gray(0) {
				t.Fatalf("pixel (%d,%d) not filled", x, y)
			}
		}
	}
}

func TestBorder(t *testing.T) {
	im := New(10, 10)
	im.Border(0, 0, 10, 10, 2, Gray(0))
	if im.At(0, 0) != Gray(0) || im.At(9, 9) != Gray(0) {
		t.Fatal("corners not painted")
	}
	if im.At(5, 5) != Gray(255) {
		t.Fatal("interior painted")
	}
}

func TestTextBlockDeterministic(t *testing.T) {
	a, b := New(100, 60), New(100, 60)
	a.TextBlock(5, 5, 90, 50, Gray(40), 777)
	b.TextBlock(5, 5, 90, 50, Gray(40), 777)
	d, err := MeanAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("same seed differs: %v", d)
	}
	c := New(100, 60)
	c.TextBlock(5, 5, 90, 50, Gray(40), 778)
	d2, _ := MeanAbsDiff(a, c)
	if d2 == 0 {
		t.Fatal("different seeds render identically")
	}
}

func TestNoiseBoundedAndDeterministic(t *testing.T) {
	base := New(50, 50)
	base.FillRect(0, 0, 50, 50, Gray(128))
	a := base.Clone()
	a.Noise(5, 42)
	for i := 0; i < len(a.Pix); i += 4 {
		for ch := 0; ch < 3; ch++ {
			v := int(a.Pix[i+ch])
			if v < 123 || v > 133 {
				t.Fatalf("noise out of range: %d", v)
			}
		}
		if a.Pix[i+3] != 255 {
			t.Fatal("alpha perturbed")
		}
	}
	b := base.Clone()
	b.Noise(5, 42)
	if d, _ := MeanAbsDiff(a, b); d != 0 {
		t.Fatal("noise not deterministic per seed")
	}
	c := base.Clone()
	c.Noise(0, 42)
	if d, _ := MeanAbsDiff(base, c); d != 0 {
		t.Fatal("amp=0 changed pixels")
	}
}

func TestGrayscale(t *testing.T) {
	im := New(2, 1)
	im.Set(0, 0, RGB(255, 0, 0))
	im.Set(1, 0, RGB(0, 255, 0))
	g := im.Grayscale()
	if g[0] != 76 { // 0.299*255
		t.Fatalf("red gray = %d", g[0])
	}
	if g[1] != 149 { // 0.587*255
		t.Fatalf("green gray = %d", g[1])
	}
}

func TestResizeGrayUniform(t *testing.T) {
	im := New(64, 64)
	im.Fill(Gray(200))
	out := im.ResizeGray(9, 8)
	if len(out) != 72 {
		t.Fatalf("len = %d", len(out))
	}
	for _, v := range out {
		if v != 200 {
			t.Fatalf("resized value = %d", v)
		}
	}
}

func TestResizeGrayHalves(t *testing.T) {
	im := New(10, 10)
	im.FillRect(0, 0, 5, 10, Gray(0))   // left black
	im.FillRect(5, 0, 5, 10, Gray(255)) // right white
	out := im.ResizeGray(2, 1)
	if out[0] >= 10 || out[1] <= 245 {
		t.Fatalf("halves = %v", out)
	}
}

func TestResizeGrayUpscale(t *testing.T) {
	im := New(2, 2)
	im.Fill(Gray(7))
	out := im.ResizeGray(5, 5)
	for _, v := range out {
		if v != 7 {
			t.Fatalf("upscaled value %d", v)
		}
	}
}

func TestEncodePNG(t *testing.T) {
	im := New(16, 16)
	im.FillRect(2, 2, 8, 8, RGB(200, 30, 30))
	var buf bytes.Buffer
	if err := im.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || !bytes.HasPrefix(buf.Bytes(), []byte("\x89PNG")) {
		t.Fatal("no PNG signature")
	}
}

func TestMeanAbsDiffSizeMismatch(t *testing.T) {
	if _, err := MeanAbsDiff(New(2, 2), New(3, 3)); err == nil {
		t.Fatal("size mismatch not reported")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(4, 4)
	b := a.Clone()
	b.Set(0, 0, Gray(0))
	if a.At(0, 0) == Gray(0) {
		t.Fatal("clone shares pixels")
	}
}

// Property: FillRect never touches pixels outside the rectangle.
func TestFillRectProperty(t *testing.T) {
	f := func(xr, yr, wr, hr uint8) bool {
		im := New(16, 16)
		x, y := int(xr%20)-2, int(yr%20)-2
		w, h := int(wr%20), int(hr%20)
		im.FillRect(x, y, w, h, Gray(0))
		for py := 0; py < 16; py++ {
			for px := 0; px < 16; px++ {
				inside := px >= x && px < x+w && py >= y && py < y+h
				black := im.At(px, py) == Gray(0)
				if black && !inside {
					return false
				}
				if inside && !black {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
