package imaging

import (
	"bytes"
	"testing"
)

func TestNewPooledMatchesNew(t *testing.T) {
	a := New(33, 21)
	b := NewPooled(33, 21)
	defer b.Release()
	if a.W != b.W || a.H != b.H || !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("pooled image differs from New")
	}
}

func TestPooledReuseStartsWhite(t *testing.T) {
	img := NewPooled(16, 16)
	img.Fill(RGB(1, 2, 3))
	img.Release()
	again := NewPooled(16, 16)
	defer again.Release()
	want := New(16, 16)
	if !bytes.Equal(again.Pix, want.Pix) {
		t.Fatal("reused pooled buffer not reset to white")
	}
}

func TestReleaseIsIdempotentAndNilSafe(t *testing.T) {
	img := NewPooled(4, 4)
	img.Release()
	img.Release() // second release is a no-op
	var nilImg *Image
	nilImg.Release()
}

func TestGrayPoolRoundTrip(t *testing.T) {
	buf := GetGray(128)
	if len(buf) != 128 {
		t.Fatalf("len = %d, want 128", len(buf))
	}
	PutGray(buf)
	again := GetGray(64)
	if len(again) != 64 {
		t.Fatalf("len = %d, want 64", len(again))
	}
	PutGray(again)
}

func TestPoolStatsProgress(t *testing.T) {
	gets0, _, _ := PoolStats()
	img := NewPooled(8, 8)
	gets1, _, inUse := PoolStats()
	if gets1 <= gets0 {
		t.Fatal("gets did not increase")
	}
	if inUse < int64(8*8*4) {
		t.Fatalf("inUse = %d, want >= %d", inUse, 8*8*4)
	}
	img.Release()
}

// TestNoisyGrayMatchesNoiseThenGrayscale is the bit-exactness contract
// of the fused pass, across amplitudes including the specialised amp=2.
func TestNoisyGrayMatchesNoiseThenGrayscale(t *testing.T) {
	for _, amp := range []int{0, 1, 2, 3, 7} {
		for _, seed := range []uint64{0, 1, 42, 1 << 60} {
			img := New(37, 23)
			// Non-trivial content so clamping paths are exercised.
			img.FillRect(0, 0, 20, 23, RGB(250, 3, 128))
			img.FillRect(10, 5, 27, 10, RGB(0, 255, 7))
			img.TextBlock(2, 2, 30, 18, RGB(9, 9, 9), 99)

			fused := make([]byte, img.W*img.H)
			img.NoisyGrayInto(fused, amp, seed)

			naive := img.Clone()
			naive.Noise(amp, seed)
			want := naive.Grayscale()

			if !bytes.Equal(fused, want) {
				t.Fatalf("amp=%d seed=%d: fused gray differs from Noise+Grayscale", amp, seed)
			}
		}
	}
}

func TestNoisyGrayLeavesSourceUntouched(t *testing.T) {
	img := New(16, 16)
	img.FillRect(3, 3, 9, 9, RGB(120, 40, 200))
	before := append([]byte(nil), img.Pix...)
	dst := make([]byte, 16*16)
	img.NoisyGrayInto(dst, 2, 777)
	if !bytes.Equal(before, img.Pix) {
		t.Fatal("NoisyGrayInto mutated the source pixels")
	}
}
