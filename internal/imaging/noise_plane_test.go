package imaging

import "testing"

func testImage(w, h int, seed uint64) *Image {
	im := New(w, h)
	s := seed | 1
	for i := range im.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		im.Pix[i] = byte(s)
	}
	return im
}

func TestBuildPlaneMatchesNoiseStream(t *testing.T) {
	// The plane must replay exactly the stream Noise consumes: applying
	// plane deltas to an image must equal Noise on a clone.
	for _, amp := range []int{1, 2, 3, 7} {
		im := testImage(64, 48, 11)
		want := im.Clone()
		want.Noise(amp, 99)
		plane := BuildPlane(99, 64*48, amp)
		lut := AddClampLUT(amp)
		for p, i := 0, 0; i+3 < len(im.Pix); p, i = p+1, i+4 {
			q := 3 * p
			im.Pix[i] = lut[int(im.Pix[i])+int(plane[q])+amp]
			im.Pix[i+1] = lut[int(im.Pix[i+1])+int(plane[q+1])+amp]
			im.Pix[i+2] = lut[int(im.Pix[i+2])+int(plane[q+2])+amp]
		}
		for i := range im.Pix {
			if im.Pix[i] != want.Pix[i] {
				t.Fatalf("amp %d: pixel byte %d: %d != %d", amp, i, im.Pix[i], want.Pix[i])
			}
		}
	}
}

func TestNoisyGrayIntoCachedBitIdentical(t *testing.T) {
	nc := NewNoiseCache(0)
	for _, amp := range []int{0, 1, 2, 5} {
		for seed := uint64(1); seed <= 3; seed++ {
			im := testImage(40, 30, seed*13)
			want := im.NoisyGrayInto(make([]byte, 40*30), amp, seed)
			// Three rounds walk the admission states: miss, build, hit.
			for round := 0; round < 3; round++ {
				got := im.NoisyGrayIntoCached(make([]byte, 40*30), amp, seed, nc)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("amp %d seed %d round %d: byte %d differs", amp, seed, round, i)
					}
				}
			}
		}
	}
	if hits, _, _, _ := nc.Stats(); hits == 0 {
		t.Fatal("expected plane-cache hits on the third rounds")
	}
}

func TestNoiseCachedBitIdentical(t *testing.T) {
	nc := NewNoiseCache(0)
	for round := 0; round < 3; round++ {
		a := testImage(32, 32, 7)
		b := a.Clone()
		a.Noise(2, 1234)
		b.NoiseCached(2, 1234, nc)
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				t.Fatalf("round %d: byte %d differs", round, i)
			}
		}
	}
}

func TestNoiseCacheNilSafe(t *testing.T) {
	var nc *NoiseCache
	if p, build := nc.Lookup(1, 100, 2); p != nil || build {
		t.Fatal("nil cache must miss without admission")
	}
	nc.Store(1, 100, 2, make([]int8, 300))
	if nc.Bytes() != 0 || nc.BytesPeak() != 0 || nc.Entries() != 0 {
		t.Fatal("nil cache must report zero state")
	}
	im := testImage(16, 16, 3)
	want := im.Clone()
	want.Noise(2, 5)
	im.NoiseCached(2, 5, nil)
	for i := range im.Pix {
		if im.Pix[i] != want.Pix[i] {
			t.Fatal("nil-cache NoiseCached diverged from Noise")
		}
	}
}

func TestNoiseCacheAdmissionAndEviction(t *testing.T) {
	nc := NewNoiseCache(4 * 300) // room for four 100-pixel planes
	lookups := func(seed uint64) (hit bool, build bool) {
		p, b := nc.Lookup(seed, 100, 2)
		return p != nil, b
	}
	if hit, build := lookups(1); hit || build {
		t.Fatal("first sighting must not admit")
	}
	if hit, build := lookups(1); hit || !build {
		t.Fatal("second sighting must admit")
	}
	nc.Store(1, 100, 2, BuildPlane(1, 100, 2))
	if hit, _ := lookups(1); !hit {
		t.Fatal("stored plane must hit")
	}
	// Filling past the byte budget evicts FIFO.
	for seed := uint64(2); seed <= 8; seed++ {
		nc.Lookup(seed, 100, 2)
		nc.Lookup(seed, 100, 2)
		nc.Store(seed, 100, 2, BuildPlane(seed, 100, 2))
	}
	if nc.Bytes() > 4*300 {
		t.Fatalf("cache over byte budget: %d", nc.Bytes())
	}
	if _, _, ev, _ := nc.Stats(); ev == 0 {
		t.Fatal("expected evictions")
	}
	if nc.BytesPeak() < nc.Bytes() {
		t.Fatal("peak below current bytes")
	}
	if hit, _ := lookups(1); hit {
		t.Fatal("oldest plane should have been evicted")
	}
}

func TestNoiseCacheRejectsOversizeAmp(t *testing.T) {
	nc := NewNoiseCache(0)
	nc.Lookup(1, 10, PlaneMaxAmp+1)
	if _, build := nc.Lookup(1, 10, PlaneMaxAmp+1); build {
		t.Fatal("amp beyond plane encoding must never admit")
	}
}

// TestNoiseJumpMatchesStepping pins the GF(2) jump tables to the scalar
// recurrence: Apply must land on exactly the state `draws` sequential
// steps reach, from arbitrary (including degenerate) start states.
func TestNoiseJumpMatchesStepping(t *testing.T) {
	for _, draws := range []int{1, 3, 27, 3 * 37, 3 * 256, 3 * 1024} {
		j := JumpFor(draws)
		for _, s0 := range []uint64{1, 3, 0xdeadbeef, ^uint64(0), 1 << 63, 0x9e3779b97f4a7c15} {
			want := s0
			for k := 0; k < draws; k++ {
				want = noiseStep(want)
			}
			if got := j.Apply(s0); got != want {
				t.Fatalf("draws=%d s0=%#x: jump %#x != stepped %#x", draws, s0, got, want)
			}
		}
		if j2 := JumpFor(draws); j2 != j {
			t.Fatalf("draws=%d: cache returned a different table", draws)
		}
	}
	// Zero is M's fixed point (linearity).
	if got := JumpFor(5).Apply(0); got != 0 {
		t.Fatalf("jump of zero state: %#x", got)
	}
}

func TestClampLUTs(t *testing.T) {
	lut5 := ClampLUT5()
	for v := 0; v <= 255; v++ {
		for d := -2; d <= 2; d++ {
			if got, want := lut5[v+d+2], clampByte(v+d); got != want {
				t.Fatalf("lut5[%d+%d]: %d != %d", v, d, got, want)
			}
		}
	}
	lut := AddClampLUT(7)
	for v := 0; v <= 255; v++ {
		for d := -7; d <= 7; d++ {
			if got, want := lut[v+d+7], clampByte(v+d); got != want {
				t.Fatalf("lut7[%d+%d]: %d != %d", v, d, got, want)
			}
		}
	}
}
