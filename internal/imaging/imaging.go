// Package imaging provides the small raster toolkit used by the
// screenshot renderer and the perceptual hasher: an RGBA image type,
// drawing primitives (solid fills, borders, hatched "text" blocks,
// deterministic noise), grayscale conversion and box-filter resizing.
//
// The pipeline hashes screenshots with a difference hash (see
// internal/phash); all it needs from rendering is that pages built from
// the same visual template produce near-identical pixel data while pages
// from different templates differ strongly. The primitives here are
// sufficient for that and keep the renderer dependency-free.
package imaging

import (
	"fmt"
	"image"
	"image/png"
	"io"
)

// Image is a simple 8-bit RGBA raster.
type Image struct {
	W, H int
	Pix  []byte // 4 bytes per pixel, row-major
}

// New returns a white image of the given size.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid size %dx%d", w, h))
	}
	img := &Image{W: w, H: h, Pix: make([]byte, w*h*4)}
	img.Fill(RGB(255, 255, 255))
	return img
}

// Color is an RGBA color.
type Color struct{ R, G, B, A byte }

// RGB builds an opaque Color.
func RGB(r, g, b byte) Color { return Color{r, g, b, 255} }

// Gray builds an opaque gray Color.
func Gray(v byte) Color { return Color{v, v, v, 255} }

func (im *Image) idx(x, y int) int { return (y*im.W + x) * 4 }

// Set writes a pixel, ignoring out-of-bounds coordinates.
func (im *Image) Set(x, y int, c Color) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	i := im.idx(x, y)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3] = c.R, c.G, c.B, c.A
}

// At reads a pixel; out-of-bounds reads return black.
func (im *Image) At(x, y int) Color {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return Color{}
	}
	i := im.idx(x, y)
	return Color{im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3]}
}

// Fill paints the whole image.
func (im *Image) Fill(c Color) {
	im.FillRect(0, 0, im.W, im.H, c)
}

// FillRect paints the rectangle [x,x+w) x [y,y+h), clipped to the image.
// Rows are painted by writing the first pixel and then doubling it with
// copy, which the runtime turns into wide memmoves — the renderer's
// hottest primitive (every element box is at least one fill).
func (im *Image) FillRect(x, y, w, h int, c Color) {
	x0, y0, x1, y1 := clip(x, y, w, h, im.W, im.H)
	if x1 <= x0 || y1 <= y0 {
		return
	}
	// Paint the first row pixel by pixel (seed), then double it.
	first := im.Pix[im.idx(x0, y0):im.idx(x1, y0)]
	first[0], first[1], first[2], first[3] = c.R, c.G, c.B, c.A
	for filled := 4; filled < len(first); filled *= 2 {
		copy(first[filled:], first[:filled])
	}
	// Replicate the seeded row into the remaining rows.
	for yy := y0 + 1; yy < y1; yy++ {
		copy(im.Pix[im.idx(x0, yy):im.idx(x1, yy)], first)
	}
}

// Border draws a t-pixel border just inside the rectangle.
func (im *Image) Border(x, y, w, h, t int, c Color) {
	im.FillRect(x, y, w, t, c)
	im.FillRect(x, y+h-t, w, t, c)
	im.FillRect(x, y, t, h, c)
	im.FillRect(x+w-t, y, t, h, c)
}

// TextBlock simulates a block of text: horizontal stripes of "ink" with a
// line height and a ragged right edge derived from seed. The same seed
// always produces the same raggedness, so identical text templates render
// identically.
func (im *Image) TextBlock(x, y, w, h int, ink Color, seed uint64) {
	const lineH, gap = 3, 4
	s := seed
	for ty := y; ty+lineH <= y+h; ty += lineH + gap {
		s = s*6364136223846793005 + 1442695040888963407
		frac := 60 + int(s>>33)%41 // 60..100% of width
		lw := w * frac / 100
		im.FillRect(x, ty, lw, lineH, ink)
	}
}

// Noise perturbs each pixel channel by at most amp, using a deterministic
// per-seed pseudo-random stream. Small noise models capture artefacts
// (timestamps, dynamic counters) that perceptual hashing must tolerate.
func (im *Image) Noise(amp int, seed uint64) {
	if amp <= 0 {
		return
	}
	// The renderer always perturbs with amp=2 (modulus 5); a dedicated
	// loop lets the compiler strength-reduce the per-channel modulo into
	// a multiply, which matters because Noise touches three channels of
	// every pixel of every screenshot the pipeline captures.
	if amp == 2 {
		im.noiseMod5(seed)
		return
	}
	s := seed | 1
	m := uint64(2*amp + 1)
	for i := 0; i+3 < len(im.Pix); i += 4 {
		for j := i; j < i+3; j++ { // leave alpha
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			im.Pix[j] = clampByte(int(im.Pix[j]) + int(s%m) - amp)
		}
	}
}

// noiseMod5 is Noise specialised to amp=2: identical output, constant
// modulus.
func (im *Image) noiseMod5(seed uint64) {
	s := seed | 1
	for i := 0; i+3 < len(im.Pix); i += 4 {
		for j := i; j < i+3; j++ { // leave alpha
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			im.Pix[j] = clampByte(int(im.Pix[j]) + int(s%5) - 2)
		}
	}
}

func clampByte(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// NoisyGrayInto writes into dst (length W*H) the Rec.601 luminance the
// image would have after Noise(amp, seed), without mutating the pixel
// data: the per-seed noise stream is applied to each channel during the
// luminance conversion, with arithmetic identical to Noise followed by
// Grayscale. It returns dst. amp <= 0 degenerates to a plain grayscale
// conversion.
//
// This is the capture fast path's fused pass: one traversal replaces
// the mutate-every-pixel Noise pass plus the separate Grayscale pass,
// and the source image stays pristine so it can live in a cache.
func (im *Image) NoisyGrayInto(dst []byte, amp int, seed uint64) []byte {
	if amp <= 0 {
		for p, i := 0, 0; p < len(dst); p, i = p+1, i+4 {
			r, g, b := int(im.Pix[i]), int(im.Pix[i+1]), int(im.Pix[i+2])
			dst[p] = byte((299*r + 587*g + 114*b) / 1000)
		}
		return dst
	}
	if amp == 2 {
		return im.noisyGrayMod5(dst, seed)
	}
	s := seed | 1
	m := uint64(2*amp + 1)
	for p, i := 0, 0; p < len(dst); p, i = p+1, i+4 {
		var ch [3]int
		for j := 0; j < 3; j++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			ch[j] = int(clampByte(int(im.Pix[i+j]) + int(s%m) - amp))
		}
		dst[p] = byte((299*ch[0] + 587*ch[1] + 114*ch[2]) / 1000)
	}
	return dst
}

// noisyGrayMod5 is NoisyGrayInto specialised to amp=2 (the renderer's
// only amplitude), mirroring noiseMod5's constant modulus.
func (im *Image) noisyGrayMod5(dst []byte, seed uint64) []byte {
	s := seed | 1
	for p, i := 0, 0; p < len(dst); p, i = p+1, i+4 {
		var ch [3]int
		for j := 0; j < 3; j++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			ch[j] = int(clampByte(int(im.Pix[i+j]) + int(s%5) - 2))
		}
		dst[p] = byte((299*ch[0] + 587*ch[1] + 114*ch[2]) / 1000)
	}
	return dst
}

// NoisyGrayIntoCached is NoisyGrayInto with a noise-plane cache: when
// the (seed, amp) delta plane for this raster size is cached, the
// xorshift stream is replaced by plane reads; on an admitted miss the
// plane is built, used and published; otherwise it falls through to the
// inline NoisyGrayInto. Works for any amplitude the plane encoding
// supports (amp <= PlaneMaxAmp), so non-default NoiseAmp values share
// the same fast path instead of silently dropping to the naive loop.
// Output is bit-identical to NoisyGrayInto for every (amp, seed, nc).
func (im *Image) NoisyGrayIntoCached(dst []byte, amp int, seed uint64, nc *NoiseCache) []byte {
	if amp <= 0 {
		return im.NoisyGrayInto(dst, amp, seed)
	}
	n := im.W * im.H
	plane, build := nc.Lookup(seed, n, amp)
	if plane == nil && build {
		plane = BuildPlane(seed, n, amp)
		nc.Store(seed, n, amp, plane)
	}
	if plane != nil {
		return im.noisyGrayPlane(dst, plane, amp)
	}
	return im.NoisyGrayInto(dst, amp, seed)
}

// noisyGrayPlane is NoisyGrayInto with the noise stream replayed from a
// precomputed delta plane.
func (im *Image) noisyGrayPlane(dst []byte, plane []int8, amp int) []byte {
	lut := clampLUT5[:]
	if amp != 2 {
		lut = AddClampLUT(amp)
	}
	for p, i := 0, 0; p < len(dst); p, i = p+1, i+4 {
		q := 3 * p
		r := int(lut[int(im.Pix[i])+int(plane[q])+amp])
		g := int(lut[int(im.Pix[i+1])+int(plane[q+1])+amp])
		b := int(lut[int(im.Pix[i+2])+int(plane[q+2])+amp])
		dst[p] = byte((299*r + 587*g + 114*b) / 1000)
	}
	return dst
}

// NoiseCached is Noise with a noise-plane cache: cached (or admitted)
// delta planes replace the xorshift stream, uncached seeds fall through
// to the inline Noise. Pixel output is bit-identical to Noise.
func (im *Image) NoiseCached(amp int, seed uint64, nc *NoiseCache) {
	if amp <= 0 {
		return
	}
	n := im.W * im.H
	plane, build := nc.Lookup(seed, n, amp)
	if plane == nil && build {
		plane = BuildPlane(seed, n, amp)
		nc.Store(seed, n, amp, plane)
	}
	if plane == nil {
		im.Noise(amp, seed)
		return
	}
	lut := clampLUT5[:]
	if amp != 2 {
		lut = AddClampLUT(amp)
	}
	for p, i := 0, 0; i+3 < len(im.Pix); p, i = p+1, i+4 {
		q := 3 * p
		im.Pix[i] = lut[int(im.Pix[i])+int(plane[q])+amp]
		im.Pix[i+1] = lut[int(im.Pix[i+1])+int(plane[q+1])+amp]
		im.Pix[i+2] = lut[int(im.Pix[i+2])+int(plane[q+2])+amp]
	}
}

// Grayscale returns a luminance view of the image as a W*H byte slice
// using the Rec.601 weights.
func (im *Image) Grayscale() []byte {
	out := make([]byte, im.W*im.H)
	for p, i := 0, 0; p < len(out); p, i = p+1, i+4 {
		r, g, b := int(im.Pix[i]), int(im.Pix[i+1]), int(im.Pix[i+2])
		out[p] = byte((299*r + 587*g + 114*b) / 1000)
	}
	return out
}

// ResizeGray box-filters the image's grayscale view down (or up) to w x h.
// It is the preprocessing step for perceptual hashing.
func (im *Image) ResizeGray(w, h int) []byte {
	return ResizeGrayFrom(im.Grayscale(), im.W, im.H, w, h)
}

// ResizeGrayFrom box-filters an existing grayscale buffer (srcW x srcH,
// row-major) down (or up) to w x h. The hasher uses it to derive both
// dhash grids from a single grayscale conversion instead of one per
// grid.
func ResizeGrayFrom(gray []byte, srcW, srcH, w, h int) []byte {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid resize %dx%d", w, h))
	}
	out := make([]byte, w*h)
	for oy := 0; oy < h; oy++ {
		y0, y1 := oy*srcH/h, (oy+1)*srcH/h
		if y1 <= y0 {
			y1 = y0 + 1
		}
		if y1 > srcH {
			y1 = srcH
		}
		for ox := 0; ox < w; ox++ {
			x0, x1 := ox*srcW/w, (ox+1)*srcW/w
			if x1 <= x0 {
				x1 = x0 + 1
			}
			if x1 > srcW {
				x1 = srcW
			}
			var sum, n int
			for yy := y0; yy < y1; yy++ {
				row := yy * srcW
				for xx := x0; xx < x1; xx++ {
					sum += int(gray[row+xx])
					n++
				}
			}
			out[oy*w+ox] = byte(sum / n)
		}
	}
	return out
}

// EncodePNG writes the image as PNG. Used by the figure benches and
// example programs to emit the paper's screenshot figures. The stdlib
// image wraps the existing pixel buffer — no copy is made.
func (im *Image) EncodePNG(w io.Writer) error {
	dst := &image.RGBA{Pix: im.Pix, Stride: im.W * 4, Rect: image.Rect(0, 0, im.W, im.H)}
	return png.Encode(w, dst)
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]byte, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// MeanAbsDiff returns the mean absolute per-channel difference between two
// same-sized images; a crude similarity metric used in tests.
func MeanAbsDiff(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("imaging: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var sum int64
	for i := range a.Pix {
		d := int64(a.Pix[i]) - int64(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Pix)), nil
}

func clip(x, y, w, h, maxW, maxH int) (x0, y0, x1, y1 int) {
	x0, y0, x1, y1 = x, y, x+w, y+h
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > maxW {
		x1 = maxW
	}
	if y1 > maxH {
		y1 = maxH
	}
	if x1 < x0 {
		x1 = x0
	}
	if y1 < y0 {
		y1 = y0
	}
	return
}
