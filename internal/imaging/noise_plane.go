package imaging

import (
	"sync"
	"sync/atomic"
)

// Noise-plane cache. The per-capture noise stream (Noise, NoisyGrayInto)
// depends only on (seed, pixel index, amplitude) — never on pixel
// content — so the per-pixel delta triples can be precomputed once per
// (seed, pixel count, amp) and replayed as table reads. Replaying skips
// the serial xorshift recurrence, which otherwise bounds the capture
// hash kernel (three dependent 6-op rounds per pixel).
//
// Seeds are admitted on their second sighting: capture seeds mix the
// landing URL with an hour bucket, so workloads over rotating attack
// domains derive mostly single-use seeds, and eagerly materialising a
// 3-bytes-per-pixel plane for each of those would add allocation churn
// with no replay to pay for it. Stable-URL workloads (repeat probes
// within an hour, fixed-seed corpora) hit from the third capture on.
//
// A nil *NoiseCache is valid: lookups miss without admission, so callers
// fall through to their inline noise generation.

// PlaneMaxAmp is the largest noise amplitude a delta plane can encode
// (deltas are int8 in [-amp, amp]). Larger amplitudes are never cached;
// callers keep their inline path.
const PlaneMaxAmp = 120

// DefaultNoiseCacheBytes bounds a cache to ~32 MB of planes by default:
// a full-desktop 1024x768 plane is 2.25 MB, the pipeline's scaled-down
// capture viewports are a few hundred KB each.
const DefaultNoiseCacheBytes = 32 << 20

// defaultNoiseSeenEntries bounds the second-sighting filter (8-byte-ish
// keys; the bound only limits how far apart two sightings may be).
const defaultNoiseSeenEntries = 1 << 16

type planeKey struct {
	seed uint64
	n    int // pixels
	amp  int
}

// NoiseCache is a bounded, content-addressed store of noise delta
// planes: 3 int8 deltas per pixel, laid out pixel-major in stream order
// (the exact order Noise and NoisyGrayInto draw them). Planes are
// immutable once stored and may be shared by concurrent readers. Safe
// for concurrent use; nil is a valid, always-missing cache.
type NoiseCache struct {
	mu     sync.Mutex
	seen   map[planeKey]struct{}
	seenQ  planeFifo
	planes map[planeKey][]int8
	planeQ planeFifo
	bytes  int64

	maxBytes int64
	maxSeen  int

	hits, misses, evictions, stores atomic.Int64
	bytesPeak                       atomic.Int64
}

type planeFifo struct {
	items []planeKey
	head  int
}

func (q *planeFifo) push(v planeKey) { q.items = append(q.items, v) }

func (q *planeFifo) pop() (planeKey, bool) {
	if q.head >= len(q.items) {
		return planeKey{}, false
	}
	v := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

// NewNoiseCache builds a plane cache bounded to maxBytes of plane data
// (<= 0 selects DefaultNoiseCacheBytes).
func NewNoiseCache(maxBytes int64) *NoiseCache {
	if maxBytes <= 0 {
		maxBytes = DefaultNoiseCacheBytes
	}
	return &NoiseCache{
		seen:     map[planeKey]struct{}{},
		planes:   map[planeKey][]int8{},
		maxBytes: maxBytes,
		maxSeen:  defaultNoiseSeenEntries,
	}
}

// Lookup returns the cached plane for (seed, n pixels, amp), or nil on a
// miss. build reports whether the caller should materialise and Store
// the plane it is about to compute (second sighting of the key). On a
// nil cache every lookup misses without admission.
func (c *NoiseCache) Lookup(seed uint64, n, amp int) (plane []int8, build bool) {
	if c == nil || amp <= 0 || amp > PlaneMaxAmp {
		return nil, false
	}
	key := planeKey{seed: seed, n: n, amp: amp}
	c.mu.Lock()
	if p, ok := c.planes[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return p, false
	}
	_, again := c.seen[key]
	if !again {
		c.seen[key] = struct{}{}
		c.seenQ.push(key)
		for len(c.seen) > c.maxSeen {
			old, ok := c.seenQ.pop()
			if !ok {
				break
			}
			delete(c.seen, old)
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, again
}

// Store publishes an immutable plane for (seed, n pixels, amp), evicting
// oldest planes past the byte budget. Concurrent stores of the same key
// (identical content by construction) converge on one entry.
func (c *NoiseCache) Store(seed uint64, n, amp int, plane []int8) {
	if c == nil || amp <= 0 || amp > PlaneMaxAmp || len(plane) != 3*n {
		return
	}
	key := planeKey{seed: seed, n: n, amp: amp}
	sz := int64(len(plane))
	if sz > c.maxBytes {
		return
	}
	c.mu.Lock()
	if old, ok := c.planes[key]; ok {
		c.bytes -= int64(len(old))
	} else {
		c.planeQ.push(key)
	}
	c.planes[key] = plane
	c.bytes += sz
	for c.bytes > c.maxBytes {
		old, ok := c.planeQ.pop()
		if !ok {
			break
		}
		if p, present := c.planes[old]; present {
			c.bytes -= int64(len(p))
			delete(c.planes, old)
			c.evictions.Add(1)
		}
	}
	bytes := c.bytes
	c.mu.Unlock()
	c.stores.Add(1)
	for {
		peak := c.bytesPeak.Load()
		if bytes <= peak || c.bytesPeak.CompareAndSwap(peak, bytes) {
			break
		}
	}
}

// BuildPlane materialises the delta plane of the (seed, amp) noise
// stream for n pixels: 3n int8 deltas in draw order, each in
// [-amp, amp]. Matches the stream Noise and NoisyGrayInto consume.
func BuildPlane(seed uint64, n, amp int) []int8 {
	plane := make([]int8, 3*n)
	s := seed | 1
	m := uint64(2*amp + 1)
	if amp == 2 {
		for i := range plane {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			plane[i] = int8(int(s%5) - 2)
		}
		return plane
	}
	for i := range plane {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		plane[i] = int8(int(s%m) - amp)
	}
	return plane
}

// Stats reports cumulative plane-cache traffic.
func (c *NoiseCache) Stats() (hits, misses, evictions, stores int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), c.stores.Load()
}

// Bytes reports the bytes of plane data currently cached.
func (c *NoiseCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// BytesPeak reports the high-watermark of cached plane bytes.
func (c *NoiseCache) BytesPeak() int64 {
	if c == nil {
		return 0
	}
	return c.bytesPeak.Load()
}

// Entries reports the number of cached planes.
func (c *NoiseCache) Entries() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.planes)
}

// clampLUT5 is the amp=2 clamp table: clampLUT5[v+d+2] = clampByte(v+d)
// for channel value v in [0,255] and delta d in [-2,2].
var clampLUT5 = func() (t [260]byte) {
	for i := range t {
		t[i] = clampByte(i - 2)
	}
	return
}()

// ClampLUT5 exposes the amp=2 add-clamp table for fused kernels:
// t[v + delta + 2] = clampByte(v + delta).
func ClampLUT5() *[260]byte { return &clampLUT5 }

// AddClampLUT builds the add-clamp table for an arbitrary amplitude:
// t[v + delta + amp] = clampByte(v + delta) for delta in [-amp, amp].
func AddClampLUT(amp int) []byte {
	t := make([]byte, 256+2*amp)
	for i := range t {
		t[i] = clampByte(i - amp)
	}
	return t
}
