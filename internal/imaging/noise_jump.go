package imaging

import "sync"

// Noise-stream jump tables. One xorshift step is linear over GF(2)
// (three shift-xors), so k steps compose to a 64x64 bit matrix M^k that
// can be applied in eight table lookups. A jump table lets a consumer
// compute the stream state at the start of every raster row directly
// from the previous row's start state — without replaying the row's
// 3*W draws — which makes rows independent chains that a fused kernel
// can interleave for instruction-level parallelism. The draws
// themselves are unchanged: jumping lands on exactly the state the
// serial recurrence would reach.

// NoiseJump applies M^draws to a noise-stream state, where M is one
// xorshift step of the capture noise stream.
type NoiseJump struct {
	tab [8][256]uint64
}

// noiseStep is the single xorshift step shared by Noise, NoisyGrayInto
// and BuildPlane.
func noiseStep(s uint64) uint64 {
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	return s
}

// Apply advances a state by the table's draw count in 8 lookups.
func (j *NoiseJump) Apply(s uint64) uint64 {
	return j.tab[0][byte(s)] ^
		j.tab[1][byte(s>>8)] ^
		j.tab[2][byte(s>>16)] ^
		j.tab[3][byte(s>>24)] ^
		j.tab[4][byte(s>>32)] ^
		j.tab[5][byte(s>>40)] ^
		j.tab[6][byte(s>>48)] ^
		j.tab[7][byte(s>>56)]
}

func buildJump(draws int) *NoiseJump {
	// Columns of M^draws: the image of each basis bit under `draws`
	// scalar steps (linearity makes per-basis stepping exact).
	var cols [64]uint64
	for i := 0; i < 64; i++ {
		s := uint64(1) << i
		for k := 0; k < draws; k++ {
			s = noiseStep(s)
		}
		cols[i] = s
	}
	j := &NoiseJump{}
	// Subset-sum expansion per state byte: tab[b][v] = xor of the
	// columns selected by v's set bits.
	for b := 0; b < 8; b++ {
		for v := 1; v < 256; v++ {
			low := v & (v - 1) // v with lowest set bit cleared
			bit := v - low
			j.tab[b][v] = j.tab[b][low] ^ cols[b*8+trailingZeros8(bit)]
		}
	}
	return j
}

func trailingZeros8(v int) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// jumpCache memoizes tables per draw count. Rasters reuse a handful of
// widths (the paper viewports and their scaled probes), so this stays
// tiny; entries are 16 KB and immutable.
var jumpCache sync.Map // draws int -> *NoiseJump

// JumpFor returns the memoized jump table for `draws` steps of the
// noise stream.
func JumpFor(draws int) *NoiseJump {
	if v, ok := jumpCache.Load(draws); ok {
		return v.(*NoiseJump)
	}
	j := buildJump(draws)
	if v, loaded := jumpCache.LoadOrStore(draws, j); loaded {
		return v.(*NoiseJump)
	}
	return j
}
