package imaging

import (
	"sync"
	"sync/atomic"
)

// Raster and grayscale buffer pools. The capture fast path renders and
// hashes thousands of same-sized screenshots; recycling the two big
// buffers (W*H*4 RGBA, W*H gray) drops its steady-state allocation to
// near zero. Buffers of any size share one pool per kind: a pooled
// buffer whose capacity is too small for the requested size is simply
// dropped and a fresh one allocated, which converges on the largest
// viewport in use.
//
// All pool traffic is counted with atomics so the observability layer
// can export reuse rates and bytes in flight without importing this
// package's internals (see PoolStats).

var (
	rasterPool sync.Pool // *[]byte, RGBA pixel buffers
	grayPool   sync.Pool // *[]byte, luminance buffers

	poolGets   atomic.Int64 // buffers requested (both kinds)
	poolReuses atomic.Int64 // requests served from a pooled buffer
	poolInUse  atomic.Int64 // bytes currently handed out and not returned
)

// PoolStats reports cumulative pool traffic: buffer requests, requests
// served by reuse, and the bytes currently checked out of the pools.
func PoolStats() (gets, reuses, inUseBytes int64) {
	return poolGets.Load(), poolReuses.Load(), poolInUse.Load()
}

func poolGet(p *sync.Pool, n int) []byte {
	poolGets.Add(1)
	poolInUse.Add(int64(n))
	if v := p.Get(); v != nil {
		if buf := *(v.(*[]byte)); cap(buf) >= n {
			poolReuses.Add(1)
			return buf[:n]
		}
	}
	return make([]byte, n)
}

func poolPut(p *sync.Pool, buf []byte) {
	if buf == nil {
		return
	}
	poolInUse.Add(-int64(len(buf)))
	p.Put(&buf)
}

// NewPooled returns a white image like New, backed by a recycled pixel
// buffer when one of sufficient capacity is available. The caller owns
// the image until Release; a released image must not be used again.
func NewPooled(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("imaging: invalid pooled size")
	}
	img := &Image{W: w, H: h, Pix: poolGet(&rasterPool, w*h*4)}
	img.Fill(RGB(255, 255, 255))
	return img
}

// Release returns the image's pixel buffer to the pool. Only images
// obtained from NewPooled should be released; after Release the image
// must not be touched.
func (im *Image) Release() {
	if im == nil || im.Pix == nil {
		return
	}
	poolPut(&rasterPool, im.Pix)
	im.Pix = nil
}

// GetGray checks a grayscale scratch buffer of n bytes out of the pool.
// Contents are unspecified; callers overwrite every byte.
func GetGray(n int) []byte { return poolGet(&grayPool, n) }

// PutGray returns a buffer obtained from GetGray.
func PutGray(buf []byte) { poolPut(&grayPool, buf) }
