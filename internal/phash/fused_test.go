package phash

import (
	"testing"

	"repro/internal/imaging"
)

// randomImage fills an image with deterministic pseudo-random content,
// including saturated regions so the noise clamping paths fire.
func randomImage(w, h int, seed uint64) *imaging.Image {
	img := imaging.New(w, h)
	s := seed | 1
	for i := range img.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		img.Pix[i] = byte(s)
	}
	img.FillRect(0, 0, w/3+1, h/3+1, imaging.RGB(255, 255, 255))
	img.FillRect(w/2, h/2, w/3+1, h/3+1, imaging.RGB(0, 0, 0))
	return img
}

// TestDHashNoisyMatchesNaive is the bit-exactness contract of the fused
// hash: for every size class (dual-grid fast path and the tiny-raster
// fallback), amplitude and seed, DHashNoisy(im) == DHash(im + Noise).
func TestDHashNoisyMatchesNaive(t *testing.T) {
	sizes := [][2]int{
		{256, 192}, {1024, 768}, {9, 9}, {10, 64}, {37, 23},
		{8, 8}, {5, 17}, {3, 3}, {100, 9},
	}
	for _, sz := range sizes {
		for _, amp := range []int{0, 1, 2, 4} {
			for _, seed := range []uint64{0, 7, 1 << 40} {
				img := randomImage(sz[0], sz[1], seed*2654435761+uint64(sz[0]))
				fused := DHashNoisy(img, amp, seed)

				naive := img.Clone()
				naive.Noise(amp, seed)
				want := DHash(naive)

				if fused != want {
					t.Fatalf("size=%dx%d amp=%d seed=%d: fused %v != naive %v",
						sz[0], sz[1], amp, seed, fused, want)
				}
			}
		}
	}
}

func TestDHashNoisyDoesNotMutate(t *testing.T) {
	img := randomImage(64, 48, 3)
	before := append([]byte(nil), img.Pix...)
	DHashNoisy(img, 2, 99)
	for i := range before {
		if img.Pix[i] != before[i] {
			t.Fatalf("pixel %d mutated", i)
		}
	}
}
