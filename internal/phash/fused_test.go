package phash

import (
	"testing"

	"repro/internal/imaging"
)

// randomImage fills an image with deterministic pseudo-random content,
// including saturated regions so the noise clamping paths fire.
func randomImage(w, h int, seed uint64) *imaging.Image {
	img := imaging.New(w, h)
	s := seed | 1
	for i := range img.Pix {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		img.Pix[i] = byte(s)
	}
	img.FillRect(0, 0, w/3+1, h/3+1, imaging.RGB(255, 255, 255))
	img.FillRect(w/2, h/2, w/3+1, h/3+1, imaging.RGB(0, 0, 0))
	return img
}

// TestDHashNoisyMatchesNaive is the bit-exactness contract of the fused
// hash: for every size class (dual-grid fast path and the tiny-raster
// fallback), amplitude and seed, DHashNoisy(im) == DHash(im + Noise).
func TestDHashNoisyMatchesNaive(t *testing.T) {
	sizes := [][2]int{
		{256, 192}, {1024, 768}, {9, 9}, {10, 64}, {37, 23},
		{8, 8}, {5, 17}, {3, 3}, {100, 9},
	}
	for _, sz := range sizes {
		for _, amp := range []int{0, 1, 2, 4} {
			for _, seed := range []uint64{0, 7, 1 << 40} {
				img := randomImage(sz[0], sz[1], seed*2654435761+uint64(sz[0]))
				fused := DHashNoisy(img, amp, seed)

				naive := img.Clone()
				naive.Noise(amp, seed)
				want := DHash(naive)

				if fused != want {
					t.Fatalf("size=%dx%d amp=%d seed=%d: fused %v != naive %v",
						sz[0], sz[1], amp, seed, fused, want)
				}
			}
		}
	}
}

func TestDHashNoisyDoesNotMutate(t *testing.T) {
	img := randomImage(64, 48, 3)
	before := append([]byte(nil), img.Pix...)
	DHashNoisy(img, 2, 99)
	for i := range before {
		if img.Pix[i] != before[i] {
			t.Fatalf("pixel %d mutated", i)
		}
	}
}

// naiveHash is the reference pipeline the fused kernels must match bit
// for bit: clone, mutate with Noise, hash the materialised grayscale.
func naiveHash(img *imaging.Image, amp int, seed uint64) Hash {
	n := img.Clone()
	n.Noise(amp, seed)
	return DHash(n)
}

// TestDHashNoisyCachedMatchesNaive walks every plane-cache state — cold
// miss (inline kernel), admitted miss (build + hash from fresh plane),
// hit (replay cached plane) — and demands the same hash as the naive
// path each round, for the renderer's amp=2 and the generic-amp kernels.
func TestDHashNoisyCachedMatchesNaive(t *testing.T) {
	sizes := [][2]int{{256, 192}, {64, 48}, {37, 23}, {9, 9}, {8, 8}, {5, 17}}
	for _, sz := range sizes {
		for _, amp := range []int{1, 2, 6} {
			nc := imaging.NewNoiseCache(0)
			for _, seed := range []uint64{0, 7, 1<<40 + 3} {
				img := randomImage(sz[0], sz[1], seed^uint64(31*sz[0]+sz[1]))
				want := naiveHash(img, amp, seed)
				for round := 0; round < 3; round++ {
					if got := DHashNoisyCached(img, amp, seed, nc); got != want {
						t.Fatalf("size=%dx%d amp=%d seed=%d round=%d: %v != %v",
							sz[0], sz[1], amp, seed, round, got, want)
					}
				}
			}
			if hits, _, _, _ := nc.Stats(); hits == 0 && sz[0] >= 9 && sz[1] >= 9 {
				t.Fatalf("size=%dx%d amp=%d: expected plane hits by round three", sz[0], sz[1], amp)
			}
		}
	}
}

// TestDHashNoisyClampEdges pins the branchless clamp: images saturated
// near both channel extremes (0..4 and 251..255), where every delta in
// [-amp, amp] straddles a clamp boundary, must hash identically to the
// naive clampByte path on all kernel variants.
func TestDHashNoisyClampEdges(t *testing.T) {
	for _, base := range []int{0, 1, 2, 3, 4, 251, 252, 253, 254, 255} {
		for _, amp := range []int{1, 2, 4, 7} {
			img := imaging.New(40, 24)
			for i := 0; i < len(img.Pix); i += 4 {
				img.Pix[i] = byte(base)
				img.Pix[i+1] = byte((base + i/4) % 5)
				if base >= 251 {
					img.Pix[i+1] = byte(251 + (base+i/4)%5)
				}
				img.Pix[i+2] = byte(base)
			}
			seed := uint64(1000*base + amp)
			want := naiveHash(img, amp, seed)
			if got := DHashNoisy(img, amp, seed); got != want {
				t.Fatalf("inline base=%d amp=%d: %v != %v", base, amp, got, want)
			}
			nc := imaging.NewNoiseCache(0)
			DHashNoisyCached(img, amp, seed, nc)
			DHashNoisyCached(img, amp, seed, nc)
			if got := DHashNoisyCached(img, amp, seed, nc); got != want {
				t.Fatalf("plane base=%d amp=%d: %v != %v", base, amp, got, want)
			}
		}
	}
}

// TestDHashNoisyRandomizedProperty sweeps pseudo-random dimensions,
// amplitudes and seeds through both the cached and uncached fused paths.
func TestDHashNoisyRandomizedProperty(t *testing.T) {
	s := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	nc := imaging.NewNoiseCache(0)
	for trial := 0; trial < 60; trial++ {
		w, h := 1+next(300), 1+next(200)
		amp := next(9)
		seed := s * 0x2545f4914f6cdd1d
		img := randomImage(w, h, seed)
		want := naiveHash(img, amp, seed)
		if got := DHashNoisy(img, amp, seed); got != want {
			t.Fatalf("trial %d (%dx%d amp=%d): inline %v != naive %v", trial, w, h, amp, got, want)
		}
		for round := 0; round < 3; round++ {
			if got := DHashNoisyCached(img, amp, seed, nc); got != want {
				t.Fatalf("trial %d (%dx%d amp=%d) round %d: cached %v != naive %v",
					trial, w, h, amp, round, got, want)
			}
		}
	}
}

// FuzzDHashNoisyFused cross-checks the fused kernels against the naive
// pipeline on fuzzer-chosen dimensions, amplitude, seed and fill.
func FuzzDHashNoisyFused(f *testing.F) {
	f.Add(uint16(64), uint16(48), uint8(2), uint64(7), uint64(3))
	f.Add(uint16(9), uint16(9), uint8(0), uint64(0), uint64(1))
	f.Add(uint16(3), uint16(17), uint8(5), uint64(1)<<40, uint64(9))
	f.Add(uint16(100), uint16(9), uint8(1), uint64(12345), uint64(0xfefefefe))
	f.Fuzz(func(t *testing.T, w16, h16 uint16, amp8 uint8, seed, fill uint64) {
		w, h := int(w16)%257+1, int(h16)%193+1
		amp := int(amp8) % 12
		img := randomImage(w, h, fill)
		want := naiveHash(img, amp, seed)
		if got := DHashNoisy(img, amp, seed); got != want {
			t.Fatalf("%dx%d amp=%d seed=%d: fused %v != naive %v", w, h, amp, seed, got, want)
		}
		nc := imaging.NewNoiseCache(0)
		for round := 0; round < 3; round++ {
			if got := DHashNoisyCached(img, amp, seed, nc); got != want {
				t.Fatalf("%dx%d amp=%d seed=%d round=%d: cached %v != naive %v",
					w, h, amp, seed, round, got, want)
			}
		}
	})
}
