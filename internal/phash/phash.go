// Package phash implements the 128-bit perceptual difference hash (dhash)
// the paper uses to cluster SE-attack screenshots (Section 3.3):
//
//	"we compute a perceptual hash, specifically a 128 bit difference hash
//	 (dhash), on all these screenshot images"
//
// The 128-bit variant combines the classic horizontal-gradient dhash
// (9x8 grid, 64 bits) with its vertical counterpart (8x9 grid, 64 bits).
// Similar images produce hashes at a small Hamming distance; the
// clustering layer treats the normalised Hamming distance as its metric.
package phash

import (
	"fmt"
	"math/bits"

	"repro/internal/imaging"
)

// Bits is the hash width.
const Bits = 128

// Hash is a 128-bit perceptual hash: Hi holds the horizontal-gradient
// bits, Lo the vertical-gradient bits.
type Hash struct {
	Hi, Lo uint64
}

// DHash computes the 128-bit difference hash of an image. This is the
// naive reference implementation; the capture fast path reaches the
// same bits through DHashNoisy without materialising intermediate
// buffers.
func DHash(im *imaging.Image) Hash {
	// One grayscale conversion feeds both gradient grids — the full-image
	// pass dominates hashing cost, the 9x8/8x9 box filters are nothing.
	gray := im.Grayscale()
	hg := imaging.ResizeGrayFrom(gray, im.W, im.H, 9, 8)
	vg := imaging.ResizeGrayFrom(gray, im.W, im.H, 8, 9)
	return gridsToHash(hg, vg)
}

// gridsToHash derives the 128 gradient bits from the two box-filtered
// grids: hg is 9 columns x 8 rows (bit set when left < right), vg is 8
// columns x 9 rows (bit set when upper < lower).
func gridsToHash(hg, vg []byte) Hash {
	var hi uint64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			hi <<= 1
			if hg[y*9+x] < hg[y*9+x+1] {
				hi |= 1
			}
		}
	}
	var lo uint64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			lo <<= 1
			if vg[y*8+x] < vg[(y+1)*8+x] {
				lo |= 1
			}
		}
	}
	return Hash{Hi: hi, Lo: lo}
}

// Distance returns the Hamming distance between two hashes, in [0, 128].
func Distance(a, b Hash) int {
	return bits.OnesCount64(a.Hi^b.Hi) + bits.OnesCount64(a.Lo^b.Lo)
}

// NormDistance returns the Hamming distance normalised to [0, 1]; this is
// the distance function handed to DBSCAN (the paper's eps=0.1 therefore
// means "at most 12 of 128 bits differ").
func NormDistance(a, b Hash) float64 {
	return float64(Distance(a, b)) / float64(Bits)
}

// String renders the hash as 32 hex digits.
func (h Hash) String() string {
	return fmt.Sprintf("%016x%016x", h.Hi, h.Lo)
}

// ParseHash parses the 32-hex-digit form produced by String.
func ParseHash(s string) (Hash, error) {
	if len(s) != 32 {
		return Hash{}, fmt.Errorf("phash: want 32 hex digits, got %d", len(s))
	}
	var h Hash
	if _, err := fmt.Sscanf(s[:16], "%016x", &h.Hi); err != nil {
		return Hash{}, fmt.Errorf("phash: parse hi: %w", err)
	}
	if _, err := fmt.Sscanf(s[16:], "%016x", &h.Lo); err != nil {
		return Hash{}, fmt.Errorf("phash: parse lo: %w", err)
	}
	return h, nil
}

// FlipBits returns a copy of h with n chosen bit positions flipped;
// positions repeat modulo 128. Used by tests to construct hashes at an
// exact distance.
func (h Hash) FlipBits(positions ...int) Hash {
	for _, p := range positions {
		p %= Bits
		if p < 0 {
			p += Bits
		}
		if p < 64 {
			h.Hi ^= 1 << uint(63-p)
		} else {
			h.Lo ^= 1 << uint(127-p)
		}
	}
	return h
}
