package phash

import (
	"testing"

	"repro/internal/imaging"
)

func BenchmarkDHash(b *testing.B) {
	img := renderTemplate(1, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DHash(img)
	}
}

func BenchmarkDHashLarge(b *testing.B) {
	img := imaging.New(1024, 768)
	img.FillRect(100, 100, 600, 400, imaging.RGB(200, 50, 50))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DHash(img)
	}
}

func BenchmarkDistance(b *testing.B) {
	x := Hash{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	y := x.FlipBits(3, 77, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Distance(x, y) != 3 {
			b.Fatal("distance wrong")
		}
	}
}
