package phash

import (
	"testing"
	"testing/quick"

	"repro/internal/imaging"
)

// renderTemplate draws a synthetic "landing page" with template-dependent
// layout; noiseSeed perturbs pixels slightly, as dynamic page content does.
func renderTemplate(template int, noiseSeed uint64) *imaging.Image {
	im := imaging.New(256, 192)
	switch template % 3 {
	case 0: // fake-flash update dialog
		im.FillRect(0, 0, 256, 40, imaging.RGB(180, 30, 30))
		im.FillRect(40, 60, 176, 80, imaging.Gray(230))
		im.Border(40, 60, 176, 80, 3, imaging.Gray(60))
		im.TextBlock(50, 70, 150, 40, imaging.Gray(40), 1)
		im.FillRect(90, 120, 80, 16, imaging.RGB(40, 160, 40))
	case 1: // tech-support scare page
		im.FillRect(0, 0, 256, 192, imaging.RGB(0, 60, 160))
		im.TextBlock(20, 20, 216, 100, imaging.Gray(255), 2)
		im.FillRect(20, 140, 216, 30, imaging.Gray(240))
	case 2: // lottery wheel
		im.FillRect(0, 0, 256, 192, imaging.RGB(250, 210, 60))
		im.FillRect(78, 46, 100, 100, imaging.RGB(200, 40, 120))
		im.TextBlock(10, 160, 236, 24, imaging.Gray(20), 3)
	}
	im.Noise(3, noiseSeed)
	return im
}

func TestSameTemplateSmallDistance(t *testing.T) {
	for tmpl := 0; tmpl < 3; tmpl++ {
		a := DHash(renderTemplate(tmpl, 11))
		b := DHash(renderTemplate(tmpl, 99))
		if d := Distance(a, b); d > 12 { // paper eps=0.1 => 12.8 bits
			t.Errorf("template %d: distance %d across noise seeds", tmpl, d)
		}
	}
}

func TestDifferentTemplatesLargeDistance(t *testing.T) {
	h := make([]Hash, 3)
	for tmpl := 0; tmpl < 3; tmpl++ {
		h[tmpl] = DHash(renderTemplate(tmpl, 5))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if d := Distance(h[i], h[j]); d <= 20 {
				t.Errorf("templates %d vs %d too close: %d", i, j, d)
			}
		}
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 uint64) bool {
		a, b, c := Hash{a1, a2}, Hash{b1, b2}, Hash{c1, c2}
		dab, dba := Distance(a, b), Distance(b, a)
		if dab != dba { // symmetry
			return false
		}
		if Distance(a, a) != 0 { // identity
			return false
		}
		if dab < 0 || dab > Bits {
			return false
		}
		// Triangle inequality.
		return Distance(a, c) <= dab+Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormDistanceRange(t *testing.T) {
	a := Hash{0, 0}
	b := Hash{^uint64(0), ^uint64(0)}
	if got := NormDistance(a, b); got != 1.0 {
		t.Fatalf("max norm distance = %v", got)
	}
	if got := NormDistance(a, a); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		h := Hash{hi, lo}
		parsed, err := ParseHash(h.String())
		return err == nil && parsed == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseHashRejects(t *testing.T) {
	if _, err := ParseHash("short"); err == nil {
		t.Fatal("short string accepted")
	}
	if _, err := ParseHash("zz" + "00000000000000000000000000000w"); err == nil {
		t.Fatal("non-hex accepted")
	}
}

func TestFlipBits(t *testing.T) {
	var h Hash
	h2 := h.FlipBits(0, 63, 64, 127)
	if d := Distance(h, h2); d != 4 {
		t.Fatalf("distance after 4 flips = %d", d)
	}
	// Flipping the same bit twice restores it.
	if h.FlipBits(7, 7) != h {
		t.Fatal("double flip changed hash")
	}
	// Negative and >=128 positions wrap.
	if h.FlipBits(-1) != h.FlipBits(127) {
		t.Fatal("negative position does not wrap")
	}
	if h.FlipBits(128) != h.FlipBits(0) {
		t.Fatal("position 128 does not wrap")
	}
}

func TestDHashDeterministic(t *testing.T) {
	a := DHash(renderTemplate(1, 42))
	b := DHash(renderTemplate(1, 42))
	if a != b {
		t.Fatalf("same image hashed differently: %v vs %v", a, b)
	}
}

func TestDHashInsensitiveToScale(t *testing.T) {
	// The same layout at double resolution should hash very close: dhash
	// works on a downscaled grid.
	small := imaging.New(128, 96)
	big := imaging.New(256, 192)
	for _, im := range []*imaging.Image{small, big} {
		w, h := im.W, im.H
		im.FillRect(0, 0, w, h/4, imaging.Gray(30))
		im.FillRect(w/4, h/2, w/2, h/4, imaging.RGB(200, 60, 60))
	}
	if d := Distance(DHash(small), DHash(big)); d > 8 {
		t.Fatalf("scale sensitivity: distance %d", d)
	}
}
