package phash

import "repro/internal/imaging"

// DHashNoisy computes the hash the image would have after
// im.Noise(amp, seed) — bit-identical to that naive sequence — without
// mutating the image and without materialising any intermediate buffer:
// noise generation, clamping, Rec.601 luminance and both dual-grid
// box-filter accumulations are fused into a single pass over Pix. This
// is the hashing half of the capture fast path.
func DHashNoisy(im *imaging.Image, amp int, seed uint64) Hash {
	return DHashNoisyCached(im, amp, seed, nil)
}

// DHashNoisyCached is DHashNoisy backed by a noise-plane cache: when
// the (seed, amp) delta plane for this raster is cached, the serial
// xorshift recurrence — the kernel's latency floor — is replaced by
// plane reads; an admitted miss builds and publishes the plane; any
// other miss runs the inline fused kernel. Results are bit-identical
// for every cache state (nil included).
func DHashNoisyCached(im *imaging.Image, amp int, seed uint64, nc *imaging.NoiseCache) Hash {
	w, h := im.W, im.H
	if w < 9 || h < 9 {
		// Tiny rasters upscale, where box-filter cells overlap; fall back
		// to the reference resampler rather than replicating its clamping.
		gray := imaging.GetGray(w * h)
		im.NoisyGrayIntoCached(gray, amp, seed, nc)
		out := gridsToHash(
			imaging.ResizeGrayFrom(gray, w, h, 9, 8),
			imaging.ResizeGrayFrom(gray, w, h, 8, 9))
		imaging.PutGray(gray)
		return out
	}
	if amp <= 0 {
		return dualGridPlain(im.Pix, w, h)
	}
	plane, build := nc.Lookup(seed, w*h, amp)
	if plane == nil && build {
		// Second sighting of this noise stream: materialise the plane
		// (one extra pass, amortised by every later hit) and hash from it.
		plane = imaging.BuildPlane(seed, w*h, amp)
		nc.Store(seed, w*h, amp, plane)
	}
	if plane != nil {
		if amp == 2 {
			return dualGridPlane5(im.Pix, w, h, plane)
		}
		return dualGridPlaneAmp(im.Pix, w, h, plane, amp)
	}
	if amp == 2 {
		return dualGridMod5(im.Pix, w, h, seed)
	}
	return dualGridGenericAmp(im.Pix, w, h, seed, amp)
}

// colSeg is a run of columns whose pixels land in one (9-grid, 8-grid)
// cell-column pair: x in [x0, x1), horizontal-grid column hc, vertical-
// grid column vc. Hoisting the cell bookkeeping to segment granularity
// removes two boundary compares per pixel from the fused inner loops.
type colSeg struct{ x0, x1, hc, vc int }

// colSegments splits [0, w) at every 9-grid and 8-grid cell boundary
// (at most 16 cuts, so at most 17 segments). Boundaries follow
// imaging.ResizeGrayFrom: cell c covers [c*w/g, (c+1)*w/g).
func colSegments(w int, segs *[17]colSeg) int {
	n := 0
	hc, vc := 0, 0
	hcNext, vcNext := w/9, w/8
	x := 0
	for x < w {
		end := hcNext
		if vcNext < end {
			end = vcNext
		}
		if end > w {
			end = w
		}
		segs[n] = colSeg{x0: x, x1: end, hc: hc, vc: vc}
		n++
		x = end
		if x == hcNext {
			hc++
			hcNext = (hc + 1) * w / 9
		}
		if x == vcNext {
			vc++
			vcNext = (vc + 1) * w / 8
		}
	}
	return n
}

// gridsFromSums divides the accumulated cell sums by their cell areas
// and derives the gradient bits. For w, h >= 9 every output cell covers
// the disjoint pixel range [ox*w/W, (ox+1)*w/W) x [oy*h/H, (oy+1)*h/H)
// — exactly the cells imaging.ResizeGrayFrom visits — so sum-then-
// divide reproduces the reference grids bit for bit.
func gridsFromSums(hsum, vsum *[72]int64, w, h int) Hash {
	var hg, vg [72]byte
	for oy := 0; oy < 8; oy++ {
		ys := (oy+1)*h/8 - oy*h/8
		for ox := 0; ox < 9; ox++ {
			xs := (ox+1)*w/9 - ox*w/9
			hg[oy*9+ox] = byte(hsum[oy*9+ox] / int64(xs*ys))
		}
	}
	for oy := 0; oy < 9; oy++ {
		ys := (oy+1)*h/9 - oy*h/9
		for ox := 0; ox < 8; ox++ {
			xs := (ox+1)*w/8 - ox*w/8
			vg[oy*8+ox] = byte(vsum[oy*8+ox] / int64(xs*ys))
		}
	}
	return gridsToHash(hg[:], vg[:])
}

// The fused kernels below share one shape: a single row-major pass over
// Pix that converts each pixel to (noisy) luminance and accumulates it
// into the current cell of both grids. They differ only in how the
// noise deltas are produced; the luminance arithmetic mirrors
// NoisyGrayInto exactly, so each variant is bit-identical to the naive
// Noise + Grayscale + ResizeGray sequence. Accumulation order cannot
// perturb results — cell sums are exact integers — but the noise
// stream is order-sensitive, so every variant consumes pixels in the
// same row-major order the reference does.

// dualGridPlain is the amp<=0 kernel: plain Rec.601 luminance.
func dualGridPlain(pix []byte, w, h int) Hash {
	var segs [17]colSeg
	nseg := colSegments(w, &segs)
	var hsum, vsum [72]int64
	hr, vr := 0, 0
	hrNext, vrNext := h/8, h/9
	i := 0
	for y := 0; y < h; y++ {
		if y == hrNext {
			hr++
			hrNext = (hr + 1) * h / 8
		}
		if y == vrNext {
			vr++
			vrNext = (vr + 1) * h / 9
		}
		hbase, vbase := hr*9, vr*8
		for k := 0; k < nseg; k++ {
			sg := segs[k]
			var sum int64
			for x := sg.x0; x < sg.x1; x++ {
				r, g, b := int(pix[i]), int(pix[i+1]), int(pix[i+2])
				sum += int64((299*r + 587*g + 114*b) / 1000)
				i += 4
			}
			hsum[hbase+sg.hc] += sum
			vsum[vbase+sg.vc] += sum
		}
	}
	return gridsFromSums(&hsum, &vsum, w, h)
}

// dualGridMod5 is the amp=2 kernel with inline noise generation: the
// renderer's only amplitude, with the constant-modulus xorshift stream
// of noiseMod5 and a branchless add-clamp table. The serial xorshift
// recurrence is this kernel's latency floor, so rows are processed in
// pairs: a jump table (M^(3W) over GF(2)) derives each row's start
// state without replaying its draws, making the two rows' chains
// independent and letting them interleave in the inner loop. Draw
// values are exactly the reference stream's, and integer cell sums
// commute, so the hash is unchanged.
func dualGridMod5(pix []byte, w, h int, seed uint64) Hash {
	lut := *imaging.ClampLUT5()
	var segs [17]colSeg
	nseg := colSegments(w, &segs)
	var hsum, vsum [72]int64
	jump := imaging.JumpFor(3 * w)
	sRow := seed | 1 // stream state at the start of the current row
	hr, vr := 0, 0
	hrNext, vrNext := h/8, h/9
	y := 0
	for ; y+1 < h; y += 2 {
		if y == hrNext {
			hr++
			hrNext = (hr + 1) * h / 8
		}
		if y == vrNext {
			vr++
			vrNext = (vr + 1) * h / 9
		}
		hbA, vbA := hr*9, vr*8
		if y+1 == hrNext {
			hr++
			hrNext = (hr + 1) * h / 8
		}
		if y+1 == vrNext {
			vr++
			vrNext = (vr + 1) * h / 9
		}
		hbB, vbB := hr*9, vr*8
		sa := sRow
		sb := jump.Apply(sa)
		sRow = jump.Apply(sb)
		rowA := y * w * 4
		for k := 0; k < nseg; k++ {
			sg := segs[k]
			var sumA, sumB int64
			iA := rowA + sg.x0*4
			iB := iA + w*4
			for x := sg.x0; x < sg.x1; x++ {
				sa ^= sa << 13
				sa ^= sa >> 7
				sa ^= sa << 17
				ra := int(lut[uint64(pix[iA])+sa%5])
				sb ^= sb << 13
				sb ^= sb >> 7
				sb ^= sb << 17
				rb := int(lut[uint64(pix[iB])+sb%5])
				sa ^= sa << 13
				sa ^= sa >> 7
				sa ^= sa << 17
				ga := int(lut[uint64(pix[iA+1])+sa%5])
				sb ^= sb << 13
				sb ^= sb >> 7
				sb ^= sb << 17
				gb := int(lut[uint64(pix[iB+1])+sb%5])
				sa ^= sa << 13
				sa ^= sa >> 7
				sa ^= sa << 17
				ba := int(lut[uint64(pix[iA+2])+sa%5])
				sb ^= sb << 13
				sb ^= sb >> 7
				sb ^= sb << 17
				bb := int(lut[uint64(pix[iB+2])+sb%5])
				sumA += int64((299*ra + 587*ga + 114*ba) / 1000)
				sumB += int64((299*rb + 587*gb + 114*bb) / 1000)
				iA += 4
				iB += 4
			}
			hsum[hbA+sg.hc] += sumA
			vsum[vbA+sg.vc] += sumA
			hsum[hbB+sg.hc] += sumB
			vsum[vbB+sg.vc] += sumB
		}
	}
	// Odd-height tail: the last row runs the plain single-chain loop.
	for ; y < h; y++ {
		if y == hrNext {
			hr++
			hrNext = (hr + 1) * h / 8
		}
		if y == vrNext {
			vr++
			vrNext = (vr + 1) * h / 9
		}
		hbase, vbase := hr*9, vr*8
		s := sRow
		i := y * w * 4
		for k := 0; k < nseg; k++ {
			sg := segs[k]
			var sum int64
			for x := sg.x0; x < sg.x1; x++ {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				r := int(lut[uint64(pix[i])+s%5])
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				g := int(lut[uint64(pix[i+1])+s%5])
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				b := int(lut[uint64(pix[i+2])+s%5])
				sum += int64((299*r + 587*g + 114*b) / 1000)
				i += 4
			}
			hsum[hbase+sg.hc] += sum
			vsum[vbase+sg.vc] += sum
		}
		sRow = s
	}
	return gridsFromSums(&hsum, &vsum, w, h)
}

// dualGridPlane5 is the amp=2 kernel replaying a cached delta plane:
// no xorshift recurrence, just loads — the plane-cache hit path.
func dualGridPlane5(pix []byte, w, h int, plane []int8) Hash {
	lut := *imaging.ClampLUT5()
	var segs [17]colSeg
	nseg := colSegments(w, &segs)
	var hsum, vsum [72]int64
	hr, vr := 0, 0
	hrNext, vrNext := h/8, h/9
	i, q := 0, 0
	for y := 0; y < h; y++ {
		if y == hrNext {
			hr++
			hrNext = (hr + 1) * h / 8
		}
		if y == vrNext {
			vr++
			vrNext = (vr + 1) * h / 9
		}
		hbase, vbase := hr*9, vr*8
		for k := 0; k < nseg; k++ {
			sg := segs[k]
			var sum int64
			for x := sg.x0; x < sg.x1; x++ {
				r := int(lut[int(pix[i])+int(plane[q])+2])
				g := int(lut[int(pix[i+1])+int(plane[q+1])+2])
				b := int(lut[int(pix[i+2])+int(plane[q+2])+2])
				sum += int64((299*r + 587*g + 114*b) / 1000)
				i += 4
				q += 3
			}
			hsum[hbase+sg.hc] += sum
			vsum[vbase+sg.vc] += sum
		}
	}
	return gridsFromSums(&hsum, &vsum, w, h)
}

// dualGridPlaneAmp replays a cached delta plane at an arbitrary
// amplitude (satellite of the amp=2 fast path: non-default NoiseAmp
// values stay on the cached kernel instead of dropping to the naive
// two-pass path).
func dualGridPlaneAmp(pix []byte, w, h int, plane []int8, amp int) Hash {
	lut := imaging.AddClampLUT(amp)
	var segs [17]colSeg
	nseg := colSegments(w, &segs)
	var hsum, vsum [72]int64
	hr, vr := 0, 0
	hrNext, vrNext := h/8, h/9
	i, q := 0, 0
	for y := 0; y < h; y++ {
		if y == hrNext {
			hr++
			hrNext = (hr + 1) * h / 8
		}
		if y == vrNext {
			vr++
			vrNext = (vr + 1) * h / 9
		}
		hbase, vbase := hr*9, vr*8
		for k := 0; k < nseg; k++ {
			sg := segs[k]
			var sum int64
			for x := sg.x0; x < sg.x1; x++ {
				r := int(lut[int(pix[i])+int(plane[q])+amp])
				g := int(lut[int(pix[i+1])+int(plane[q+1])+amp])
				b := int(lut[int(pix[i+2])+int(plane[q+2])+amp])
				sum += int64((299*r + 587*g + 114*b) / 1000)
				i += 4
				q += 3
			}
			hsum[hbase+sg.hc] += sum
			vsum[vbase+sg.vc] += sum
		}
	}
	return gridsFromSums(&hsum, &vsum, w, h)
}

// dualGridGenericAmp is the inline kernel for arbitrary amplitudes:
// variable modulus, table clamp sized to the amplitude. Mirrors the
// generic branch of NoisyGrayInto.
func dualGridGenericAmp(pix []byte, w, h int, seed uint64, amp int) Hash {
	lut := imaging.AddClampLUT(amp)
	m := uint64(2*amp + 1)
	var segs [17]colSeg
	nseg := colSegments(w, &segs)
	var hsum, vsum [72]int64
	s := seed | 1
	hr, vr := 0, 0
	hrNext, vrNext := h/8, h/9
	i := 0
	for y := 0; y < h; y++ {
		if y == hrNext {
			hr++
			hrNext = (hr + 1) * h / 8
		}
		if y == vrNext {
			vr++
			vrNext = (vr + 1) * h / 9
		}
		hbase, vbase := hr*9, vr*8
		for k := 0; k < nseg; k++ {
			sg := segs[k]
			var sum int64
			for x := sg.x0; x < sg.x1; x++ {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				r := int(lut[uint64(pix[i])+s%m])
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				g := int(lut[uint64(pix[i+1])+s%m])
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				b := int(lut[uint64(pix[i+2])+s%m])
				sum += int64((299*r + 587*g + 114*b) / 1000)
				i += 4
			}
			hsum[hbase+sg.hc] += sum
			vsum[vbase+sg.vc] += sum
		}
	}
	return gridsFromSums(&hsum, &vsum, w, h)
}
