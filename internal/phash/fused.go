package phash

import "repro/internal/imaging"

// DHashNoisy computes the hash the image would have after
// im.Noise(amp, seed) — bit-identical to that naive sequence — without
// mutating the image and without allocating: the deterministic noise
// stream is applied during luminance conversion (one fused pass into a
// pooled scratch buffer), and both dhash grids are accumulated in a
// single traversal of the luminance data instead of one box-filter pass
// per grid. This is the hashing half of the capture fast path.
func DHashNoisy(im *imaging.Image, amp int, seed uint64) Hash {
	w, h := im.W, im.H
	gray := imaging.GetGray(w * h)
	im.NoisyGrayInto(gray, amp, seed)
	var out Hash
	if w >= 9 && h >= 9 {
		out = dualGridHash(gray, w, h)
	} else {
		// Tiny rasters upscale, where box-filter cells overlap; fall back
		// to the reference resampler rather than replicating its clamping.
		out = gridsToHash(
			imaging.ResizeGrayFrom(gray, w, h, 9, 8),
			imaging.ResizeGrayFrom(gray, w, h, 8, 9))
	}
	imaging.PutGray(gray)
	return out
}

// dualGridHash box-filters the luminance buffer into the 9x8 and 8x9
// dhash grids in one pass. For w, h >= 9 every output cell covers the
// disjoint pixel range [ox*w/W, (ox+1)*w/W) x [oy*h/H, (oy+1)*h/H) —
// exactly the cells imaging.ResizeGrayFrom visits — so accumulating
// each pixel into its cell and dividing by the cell area afterwards
// reproduces the reference grids bit for bit.
func dualGridHash(gray []byte, w, h int) Hash {
	var hsum, vsum [72]int64
	hr, vr := 0, 0 // current row cell of the 8-row / 9-row grids
	hrNext, vrNext := h/8, h/9
	for y := 0; y < h; y++ {
		if y == hrNext {
			hr++
			hrNext = (hr + 1) * h / 8
		}
		if y == vrNext {
			vr++
			vrNext = (vr + 1) * h / 9
		}
		hbase, vbase := hr*9, vr*8
		row := y * w
		hc, vc := 0, 0 // current column cell of the 9-col / 8-col grids
		hcNext, vcNext := w/9, w/8
		for x := 0; x < w; x++ {
			if x == hcNext {
				hc++
				hcNext = (hc + 1) * w / 9
			}
			if x == vcNext {
				vc++
				vcNext = (vc + 1) * w / 8
			}
			g := int64(gray[row+x])
			hsum[hbase+hc] += g
			vsum[vbase+vc] += g
		}
	}
	var hg, vg [72]byte
	for oy := 0; oy < 8; oy++ {
		ys := (oy+1)*h/8 - oy*h/8
		for ox := 0; ox < 9; ox++ {
			xs := (ox+1)*w/9 - ox*w/9
			hg[oy*9+ox] = byte(hsum[oy*9+ox] / int64(xs*ys))
		}
	}
	for oy := 0; oy < 9; oy++ {
		ys := (oy+1)*h/9 - oy*h/9
		for ox := 0; ox < 8; ox++ {
			xs := (ox+1)*w/8 - ox*w/8
			vg[oy*8+ox] = byte(vsum[oy*8+ox] / int64(xs*ys))
		}
	}
	return gridsToHash(hg[:], vg[:])
}
