package seacma

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §5 for the experiment index).
//
//	go test -bench=. -benchmem
//
// The expensive part — one full default-scale pipeline run (crawl 990
// publishers with 4 UAs, cluster, attribute, milk 300 sources for 14
// virtual days) — is executed once and shared by the table benches; each
// bench then measures the table/figure regeneration itself and reports
// the headline quantities as custom metrics. Tables are printed to
// stderr once so a bench run reproduces the paper's rows verbatim.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/adblock"
	"repro/internal/adnet"
	"repro/internal/adscript"
	"repro/internal/btgraph"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/imaging"
	"repro/internal/phash"
	"repro/internal/rng"
	"repro/internal/screenshot"
	"repro/internal/secamp"
	"repro/internal/urlx"
	"repro/internal/vclock"
	"repro/internal/webtx"
	"repro/internal/worldgen"
)

var (
	benchOnce sync.Once
	benchExp  *Experiment
	benchRes  *Result
	benchErr  error
)

// getBenchRun returns the shared default-scale pipeline run.
func getBenchRun(b *testing.B) (*Experiment, *Result) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultExperimentConfig()
		cfg.Milker.MaxSources = 300 // the paper tracked 505 (URL, UA) pairs
		fmt.Fprintln(os.Stderr, "bench: building default-scale world and running the full pipeline once (minutes)...")
		start := time.Now()
		benchExp = NewExperiment(cfg)
		benchRes, benchErr = benchExp.Run()
		fmt.Fprintf(os.Stderr, "bench: pipeline run completed in %v\n", time.Since(start).Round(time.Second))
	})
	if benchErr != nil {
		b.Fatalf("bench pipeline: %v", benchErr)
	}
	return benchExp, benchRes
}

var printOnce sync.Map

func printTable(name, text string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Fprintf(os.Stderr, "\n=== %s ===\n%s", name, text)
	}
}

// BenchmarkTable1_CampaignStats regenerates Table 1 (SE ad campaign
// statistics per category with GSB coverage).
func BenchmarkTable1_CampaignStats(b *testing.B) {
	exp, res := getBenchRun(b)
	var rows []Table1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.Table1(res.Discovery, exp.World.GSB, exp.World.Clock.Now())
	}
	b.StopTimer()
	printTable("Table 1", FormatTable1(rows))
	var attacks, domains, campaigns int
	for _, r := range rows {
		attacks += r.SEAttacks
		domains += r.AttackDomains
		campaigns += r.Campaigns
	}
	b.ReportMetric(float64(attacks), "se-attacks")
	b.ReportMetric(float64(domains), "attack-domains")
	b.ReportMetric(float64(campaigns), "campaigns")
}

// BenchmarkTable2_PublisherCategories regenerates Table 2 (top 20
// categories of SEACMA-hosting publishers).
func BenchmarkTable2_PublisherCategories(b *testing.B) {
	exp, res := getBenchRun(b)
	var rows []struct {
		Category string
		Count    int
		Percent  float64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := core.Table2(res.Discovery, res.Sessions, exp.World.Webcat, 20)
		rows = rows[:0]
		for _, r := range got {
			rows = append(rows, struct {
				Category string
				Count    int
				Percent  float64
			}{r.Category, r.Count, r.Percent})
		}
	}
	b.StopTimer()
	text := ""
	for _, r := range rows {
		text += fmt.Sprintf("%-28s %6d  %5.2f%%\n", r.Category, r.Count, r.Percent)
	}
	printTable("Table 2", text)
	b.ReportMetric(float64(len(rows)), "categories")
	b.ReportMetric(float64(core.SEACMAPublisherCount(res.Discovery, res.Sessions)), "seacma-publishers")
}

// BenchmarkTable3_AdNetworkAttribution regenerates Table 3 (SE attacks
// from each ad network, including the Unknown row).
func BenchmarkTable3_AdNetworkAttribution(b *testing.B) {
	exp, res := getBenchRun(b)
	patterns := core.PatternSetFromSeeds(exp.Pipeline.Cfg.Seeds)
	var rows []Table3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.Table3(res.Attributions, patterns, res.IsSE)
	}
	b.StopTimer()
	printTable("Table 3", FormatTable3(rows))
	over50 := 0
	var unknown float64
	for _, r := range rows {
		if r.SERatePct > 50 {
			over50++
		}
		if r.Network == core.UnknownNetwork {
			unknown = float64(r.SEAttackPages)
		}
	}
	b.ReportMetric(float64(over50), "networks-over-50pct-se")
	b.ReportMetric(unknown, "unknown-se-pages")
}

// BenchmarkTable4_Milking regenerates Table 4 (milking: per-category
// domain harvest with GSB-init/GSB-final rates) and the >7-day-lag
// headline.
func BenchmarkTable4_Milking(b *testing.B) {
	_, res := getBenchRun(b)
	var rows []Table4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.Table4(res.Milking)
	}
	b.StopTimer()
	printTable("Table 4", FormatTable4(rows))
	for _, r := range rows {
		if r.Category == "total" {
			b.ReportMetric(float64(r.Domains), "milked-domains")
			b.ReportMetric(r.GSBInitPct, "gsb-init-pct")
			b.ReportMetric(r.GSBFinalPct, "gsb-final-pct")
		}
	}
	b.ReportMetric(res.Milking.MeanGSBLag().Hours()/24, "mean-gsb-lag-days")
	b.ReportMetric(float64(res.Milking.Sessions), "milking-sessions")
}

// BenchmarkFigure1_TransparentAdFlow reproduces Figure 1: a click
// anywhere on a publisher page (transparent overlay ad) opens a popup
// that redirects to an SE attack.
func BenchmarkFigure1_TransparentAdFlow(b *testing.B) {
	w := worldgen.Build(worldgen.TinyConfig())
	farm := crawler.New(w.Internet, w.Clock, crawler.Config{Workers: 1, FetchCost: time.Second})
	task := crawler.Task{Host: w.Publishers[0].Host, ClientIP: webtx.IPResidential}
	b.ResetTimer()
	landings := 0
	for i := 0; i < b.N; i++ {
		s := farm.RunSession(task, webtx.UAChromeMac)
		landings += len(s.Landings)
	}
	b.StopTimer()
	b.ReportMetric(float64(landings)/float64(b.N), "landings-per-session")
}

// BenchmarkFigure2_PipelineEndToEnd runs the whole Figure 2 system on a
// tiny world (the architecture smoke bench).
func BenchmarkFigure2_PipelineEndToEnd(b *testing.B) { benchFigure2(b, 0) }

// Worker-count variants of the e2e bench for the EXPERIMENTS.md
// parallel-speedup table.
func BenchmarkFigure2_PipelineEndToEnd_W1(b *testing.B) { benchFigure2(b, 1) }
func BenchmarkFigure2_PipelineEndToEnd_W2(b *testing.B) { benchFigure2(b, 2) }
func BenchmarkFigure2_PipelineEndToEnd_W4(b *testing.B) { benchFigure2(b, 4) }
func BenchmarkFigure2_PipelineEndToEnd_W8(b *testing.B) { benchFigure2(b, 8) }

func benchFigure2(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := QuickExperimentConfig()
		cfg.World.Seed = int64(100 + i)
		if workers > 0 {
			cfg.SetWorkers(workers)
		}
		res, err := NewExperiment(cfg).Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Discovery.Campaigns()) == 0 {
			b.Fatal("no campaigns")
		}
	}
}

// BenchmarkPipelineE2E_{Phased,Streaming} run the identical tiny-world
// experiment under the two schedules: the legacy five-stage serial
// pipeline vs the streaming coordinator (per-session analysis and
// store appends under the crawl, shared backtracking graphs into
// milking). Reports are byte-identical either way — see
// TestReportDeterministicStreamingVsPhased — so the pair measures pure
// schedule cost. bench-check guards that streaming is never slower,
// and at least 15% faster where cores allow overlap.
func BenchmarkPipelineE2E_Phased(b *testing.B)    { benchPipelineE2E(b, true) }
func BenchmarkPipelineE2E_Streaming(b *testing.B) { benchPipelineE2E(b, false) }

func benchPipelineE2E(b *testing.B, phased bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := QuickExperimentConfig()
		cfg.World.Seed = int64(100 + i)
		cfg.DisableStreaming = phased
		res, err := NewExperiment(cfg).Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Discovery.Campaigns()) == 0 {
			b.Fatal("no campaigns")
		}
	}
}

// BenchmarkMilking_W* measures only the tracking (milking) stage at a
// given engine worker count; the world build, crawl and discovery that
// produce the milking sources run outside the timer. One row per worker
// count feeds the EXPERIMENTS.md parallel-speedup table.
func BenchmarkMilking_W1(b *testing.B) { benchMilking(b, 1) }
func BenchmarkMilking_W2(b *testing.B) { benchMilking(b, 2) }
func BenchmarkMilking_W4(b *testing.B) { benchMilking(b, 4) }
func BenchmarkMilking_W8(b *testing.B) { benchMilking(b, 8) }

func benchMilking(b *testing.B, workers int) {
	b.Helper()
	domains := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := worldgen.TinyConfig()
		cfg.Seed = int64(100 + i)
		w := worldgen.Build(cfg)
		p := core.NewPipeline(core.PipelineConfig{
			Seeds:     SeedsFromSpecs(w),
			Crawler:   crawler.Config{Workers: 1},
			Discovery: core.PaperDiscoveryParams,
			Milker: core.MilkerConfig{
				Duration:   2 * 24 * time.Hour,
				GSBExtra:   2 * 24 * time.Hour,
				MaxSources: 60,
				Workers:    workers,
			},
		}, w.Internet, w.Clock, w.Search, w.GSB, w.VT, w.Webcat)
		_, byHost := p.Reverse()
		sessions := p.Crawl(byHost)
		disc, err := p.Discover(sessions)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, milk, err := p.Milk(sessions, disc)
		if err != nil {
			b.Fatal(err)
		}
		domains += len(milk.Domains)
	}
	b.ReportMetric(float64(domains)/float64(b.N), "milked-domains")
}

// BenchmarkFigure3_BacktrackingGraph measures reconstructing ad-loading
// graphs from instrumentation logs and prints one (the Figure 3 chain).
func BenchmarkFigure3_BacktrackingGraph(b *testing.B) {
	_, res := getBenchRun(b)
	// Pick a session with an SE landing.
	var events = res.Sessions[0].Events
	target := ""
	for _, s := range res.Sessions {
		for _, a := range res.Attributions {
			if res.IsSE(a.Ref) && res.Sessions[a.Ref.Session] == s {
				events = s.Events
				target = a.URL
				break
			}
		}
		if target != "" {
			break
		}
	}
	if target == "" {
		b.Fatal("no SE landing in bench run")
	}
	var g *btgraph.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = btgraph.FromEvents(events)
		if _, err := g.BacktrackPath(target); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("Figure 3 (backtracking graph)", g.Render(target))
	b.ReportMetric(float64(g.EdgeCount()), "edges")
}

// BenchmarkFigure4_MilkingRotation milks one campaign's upstream URL
// across rotations and verifies the stable URL pattern behind changing
// domains.
func BenchmarkFigure4_MilkingRotation(b *testing.B) {
	clock := vclock.New()
	internet := webtx.NewInternet()
	camp := secamp.New("fig4", secamp.TechSupport, 0,
		secamp.Config{RotationPeriod: time.Hour, Slots: 2, TTLFactor: 3, TDSCount: 1},
		clock, rng.New(4), nil)
	camp.Install(internet)
	src := urlx.MustParse(camp.EntryURL())
	b.ResetTimer()
	domains := map[string]bool{}
	for i := 0; i < b.N; i++ {
		resp, err := internet.RoundTrip(&webtx.Request{URL: src, UserAgent: webtx.UAChromeMac, ClientIP: webtx.IPResidential, Time: clock.Now()})
		if err != nil || !resp.Redirect() {
			b.Fatal("milk failed")
		}
		domains[urlx.MustParse(resp.Location).Host] = true
		clock.Advance(15 * time.Minute)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(domains)), "distinct-domains")
}

// BenchmarkFigure5_CampaignScreenshots renders one exemplar screenshot
// per Figure 5 category (fake software, tech support, lottery).
func BenchmarkFigure5_CampaignScreenshots(b *testing.B) {
	cats := []secamp.Category{secamp.FakeSoftware, secamp.TechSupport, secamp.Lottery}
	src := rng.New(5)
	var tmpls []secamp.Template
	for i, c := range cats {
		tmpls = append(tmpls, secamp.NewTemplate(c, i, src))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range tmpls {
			doc := t.BuildDoc("http://x.club/l", uint64(i))
			img := screenshot.Render(doc, screenshot.Options{})
			_ = phash.DHash(img)
		}
	}
}

// BenchmarkFigure6_AttackGallery renders the full Appendix A gallery —
// every SE category including the push-notification lure — and checks
// the categories stay perceptually separated.
func BenchmarkFigure6_AttackGallery(b *testing.B) {
	src := rng.New(6)
	var tmpls []secamp.Template
	for i, c := range secamp.AllCategories {
		tmpls = append(tmpls, secamp.NewTemplate(c, i, src))
	}
	var hashes []phash.Hash
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hashes = hashes[:0]
		for _, t := range tmpls {
			doc := t.BuildDoc("http://x.club/l", 7)
			hashes = append(hashes, phash.DHash(screenshot.Render(doc, screenshot.Options{})))
		}
	}
	b.StopTimer()
	minDist := phash.Bits
	for i := 0; i < len(hashes); i++ {
		for j := i + 1; j < len(hashes); j++ {
			if d := phash.Distance(hashes[i], hashes[j]); d < minDist {
				minDist = d
			}
		}
	}
	b.ReportMetric(float64(minDist), "min-intercategory-bits")
}

// BenchmarkCapturePath_Cold measures one uncached capture — paint-list
// walk, pooled render, fused noise+luminance dual-grid hash — per
// iteration. This is what every cache miss costs.
func BenchmarkCapturePath_Cold(b *testing.B) {
	tmpl := secamp.NewTemplate(secamp.FakeSoftware, 0, rng.New(8))
	doc := tmpl.BuildDoc("http://x.club/l", 1)
	opts := screenshot.Options{NoiseAmp: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.NoiseSeed = uint64(i) | 1 // distinct stream per iteration: never memoizable
		_ = screenshot.CaptureHash(doc, opts)
	}
}

// BenchmarkCapturePath_Warm measures a memoized capture: fingerprint
// the document, hit the content-addressed cache, return the stored
// hash. This is what repeat captures (milking revisits, same-template
// publishers) cost with the cache on.
func BenchmarkCapturePath_Warm(b *testing.B) {
	tmpl := secamp.NewTemplate(secamp.FakeSoftware, 0, rng.New(8))
	doc := tmpl.BuildDoc("http://x.club/l", 1)
	opts := screenshot.Options{NoiseAmp: 2, NoiseSeed: 42}
	cache := screenshot.NewCache(0, nil)
	cache.Hash(doc, opts) // prime: the single miss
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cache.Hash(doc, opts)
	}
	b.StopTimer()
	hits, misses, _ := cache.Stats()
	b.ReportMetric(100*float64(hits)/float64(hits+misses), "cache-hit-pct")
}

// BenchmarkHashKernel_Naive measures the retained reference hash path —
// clone, mutate with Noise, grayscale, box-filter twice — on a
// default-viewport attack capture. This is the cost the fused kernel
// replaces (and the oracle the property tests compare it against).
func BenchmarkHashKernel_Naive(b *testing.B) {
	tmpl := secamp.NewTemplate(secamp.FakeSoftware, 0, rng.New(8))
	img := screenshot.Render(tmpl.BuildDoc("http://x.club/l", 1), screenshot.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := img.Clone()
		n.Noise(2, uint64(i)|1)
		_ = phash.DHash(n)
	}
}

// BenchmarkHashKernel_Fused measures the fused single-pass kernel on
// the same capture: inline xorshift noise + Rec.601 luminance + both
// dual-grid accumulations, no intermediate buffers. Distinct seed per
// iteration keeps the noise-plane cache out of the measurement — this
// is the steady-state cold-capture cost.
func BenchmarkHashKernel_Fused(b *testing.B) {
	tmpl := secamp.NewTemplate(secamp.FakeSoftware, 0, rng.New(8))
	img := screenshot.Render(tmpl.BuildDoc("http://x.club/l", 1), screenshot.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = phash.DHashNoisy(img, 2, uint64(i)|1)
	}
}

// BenchmarkHashKernel_FusedPlaneHit measures the kernel when the noise
// plane is cached (repeated seed past the admission gate): the serial
// xorshift recurrence is replaced by table reads.
func BenchmarkHashKernel_FusedPlaneHit(b *testing.B) {
	tmpl := secamp.NewTemplate(secamp.FakeSoftware, 0, rng.New(8))
	img := screenshot.Render(tmpl.BuildDoc("http://x.club/l", 1), screenshot.Options{})
	nc := imaging.NewNoiseCache(0)
	phash.DHashNoisyCached(img, 2, 42, nc) // first sighting
	phash.DHashNoisyCached(img, 2, 42, nc) // admitted: plane built
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = phash.DHashNoisyCached(img, 2, 42, nc)
	}
	b.StopTimer()
	hits, _, _, _ := nc.Stats()
	b.ReportMetric(float64(hits)/float64(b.N)*100, "plane-hit-pct")
}

// benchScriptSource builds a representative obfuscated ad script — the
// adnet serve-script shape: overlay install, dec() of an encoded click
// URL, a byte-wise transform loop, closures registered and dispatched.
func benchScriptSource() string {
	const key = 37
	enc := adscript.EncodeString("http://trk-a1.club/tok-c/click.js?z=3", key)
	return fmt.Sprintf(`
		document.addOverlay("__ovl_bench", 99999);
		let url = dec(%q, %d);
		let sum = 0;
		let i = 0;
		while (i < len(url)) {
			sum = (sum + charCodeAt(url, i)) %% 251;
			i = i + 1;
		}
		let _n = 0;
		let fire = function() {
			window.open(url);
			_n = _n + 1;
		};
		window.addEventListener("click", fire);
		fire();
		fire();
	`, enc, key)
}

// scriptBenchHost stubs the host objects the corpus scripts touch (the
// browser installs the real ones per page load); the stubs are built
// once so the benches measure the script path, not object construction.
type scriptBenchHost struct{ win, doc, nav *adscript.Object }

func newScriptBenchHost() scriptBenchHost {
	sink := func(name string) *adscript.HostFunc {
		return &adscript.HostFunc{Name: name, Fn: func(args []adscript.Value) (adscript.Value, error) { return nil, nil }}
	}
	return scriptBenchHost{
		win: adscript.NewObject().
			Set("addEventListener", sink("window.addEventListener")).
			Set("open", sink("window.open")),
		doc: adscript.NewObject().
			Set("addOverlay", sink("document.addOverlay")).
			Set("loadScript", sink("document.loadScript")),
		nav: adscript.NewObject().Set("webdriver", false),
	}
}

func (h scriptBenchHost) install(in *adscript.Interp) {
	in.Globals.Define("window", h.win)
	in.Globals.Define("document", h.doc)
	in.Globals.Define("navigator", h.nav)
}

// BenchmarkScriptPath_Cold measures the parse-per-run path: every
// iteration lexes, parses and executes the script on a fresh
// interpreter. This is what every program-cache miss costs.
func BenchmarkScriptPath_Cold(b *testing.B) {
	src := benchScriptSource()
	host := newScriptBenchHost()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := adscript.NewInterp()
		host.install(in)
		if err := in.RunSource(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScriptPath_Warm measures the compile-once fast path: the
// program is cached after the first Get, and each iteration resets a
// reused per-tab interpreter and executes the shared Program — the
// browser's steady state across a crawl plus milking run.
func BenchmarkScriptPath_Warm(b *testing.B) {
	src := benchScriptSource()
	host := newScriptBenchHost()
	cache := adscript.NewProgramCache(0, nil)
	in := adscript.NewInterp()
	host.install(in)
	if err := in.RunCached(cache, src); err != nil { // prime: the single miss
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Reset()
		host.install(in)
		if err := in.RunCached(cache, src); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, misses, _ := cache.Stats()
	b.ReportMetric(100*float64(hits)/float64(hits+misses), "script-cache-hit-pct")
}

// BenchmarkScalars_ClusterTriage reports the Section 4.3 triage scalars:
// total clusters, SE campaigns, benign clusters (paper: 130 -> 108 + 22).
func BenchmarkScalars_ClusterTriage(b *testing.B) {
	_, res := getBenchRun(b)
	var disc *core.DiscoveryResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		disc, err = core.Discover(res.Sessions, core.PaperDiscoveryParams)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(disc.Clusters)), "clusters")
	b.ReportMetric(float64(len(disc.Campaigns())), "se-campaigns")
	b.ReportMetric(float64(len(disc.BenignClusters())), "benign-clusters")
	b.ReportMetric(float64(disc.DistanceCalls), "distance-calls")
}

// BenchmarkScalars_AdblockEvasion reproduces the Section 4.4 AdBlock
// test: of the 11 seed networks, only the static-domain one is blocked
// by an EasyList-style filter.
func BenchmarkScalars_AdblockEvasion(b *testing.B) {
	src := rng.New(7)
	var nets []*adnet.Network
	for _, spec := range adnet.SeedSpecs() {
		nets = append(nets, adnet.New(spec, src))
	}
	blocked := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter := adblock.EasyListLike()
		blocked = 0
		for _, n := range nets {
			hit := false
			for _, d := range n.ScriptDomains {
				if filter.Match(urlx.MustParse("http://" + d + "/x/serve.js")) {
					hit = true
					break
				}
			}
			if hit {
				blocked++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(blocked), "networks-blocked")
}

// BenchmarkScalars_MilkedBinaries reports the Section 4.5 file scalars:
// previously-known fraction, post-rescan malicious fraction, >=15-AV
// fraction.
func BenchmarkScalars_MilkedBinaries(b *testing.B) {
	_, res := getBenchRun(b)
	files := res.Milking.Files
	if len(files) == 0 {
		b.Fatal("no milked files")
	}
	var known, mal, strong int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		known, mal, strong = 0, 0, 0
		for _, f := range files {
			if f.Known {
				known++
			}
			if f.Final.Malicious() {
				mal++
			}
			if f.Final.Positives >= 15 {
				strong++
			}
		}
	}
	b.StopTimer()
	n := float64(len(files))
	b.ReportMetric(n, "files")
	b.ReportMetric(100*float64(known)/n, "prev-known-pct")
	b.ReportMetric(100*float64(mal)/n, "malicious-pct")
	b.ReportMetric(100*float64(strong)/n, "ge15av-pct")
}

// BenchmarkScalars_NewAdNetworkDiscovery reproduces Section 4.4's
// unknown-log analysis: recover the three unseeded networks and the
// publisher expansion.
func BenchmarkScalars_NewAdNetworkDiscovery(b *testing.B) {
	_, res := getBenchRun(b)
	var found []core.DiscoveredNetwork
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found = res.DiscoverNewNetworks(5)
	}
	b.StopTimer()
	pubs := map[string]bool{}
	for _, d := range found {
		for _, p := range d.Publishers {
			pubs[p] = true
		}
	}
	b.ReportMetric(float64(len(found)), "networks-discovered")
	b.ReportMetric(float64(len(pubs)), "publishers-expanded")
}

// BenchmarkScalars_AdvertiserCost reproduces the Section 6 ethics
// accounting at a $4 CPM: worst-case and mean advertiser cost.
func BenchmarkScalars_AdvertiserCost(b *testing.B) {
	_, res := getBenchRun(b)
	var costs []core.AdvertiserCost
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costs = core.EstimateAdvertiserCosts(res.Sessions, res.IsSEDomain, 4.0)
	}
	b.StopTimer()
	if len(costs) == 0 {
		b.Fatal("no advertiser costs")
	}
	var total float64
	for _, c := range costs {
		total += c.CostUSD
	}
	b.ReportMetric(costs[0].CostUSD, "worst-case-usd")
	b.ReportMetric(total/float64(len(costs)), "mean-usd")
}
