package seacma_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/campstore"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/phash"
)

// quickStreamConfig is the shared fixture of the streaming-coordinator
// tests: tiny world, crawl pinned to one worker (the reproducibility
// convention), milking skipped — the stream itself is what is under
// test.
func quickStreamConfig() seacma.ExperimentConfig {
	cfg := seacma.QuickExperimentConfig()
	cfg.Crawler.Workers = 1
	cfg.SkipMilking = true
	return cfg
}

// TestStreamingCancelNeverCommitsTornSession mirrors
// TestMilkingCancelNeverSplitsBatch for the streaming coordinator: a
// run cancelled mid-crawl must fail, and the campaign store it was
// appending to must hold exactly the observation sequence of some
// complete-session prefix of the crawl — never a partially committed
// session. It also proves the coordinator leaks no goroutines on early
// cancellation.
func TestStreamingCancelNeverCommitsTornSession(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	// Reference: the same deterministic crawl, run to completion.
	ref, err := seacma.NewExperiment(quickStreamConfig()).Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	total := len(ref.Sessions)
	if total < 2 {
		t.Fatalf("fixture too small: %d sessions", total)
	}

	st := campstore.New(campstore.Config{Params: cluster.PaperParams})
	cfg := quickStreamConfig()
	cfg.Campaigns = st
	exp := seacma.NewExperiment(cfg)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err = exp.RunStream(ctx, func(ev seacma.ProgressEvent) {
		if ev.Phase == "crawl" && ev.Committed >= 1 {
			once.Do(cancel)
		}
	})
	if err == nil {
		t.Fatal("cancelled streaming run returned no error")
	}

	// The store must hold a complete-session prefix of the reference
	// observation sequence: for at least one k, the store's crawl view is
	// exactly CollectObservations(sessions[:k]).
	matched := -1
	for k := 0; k <= total; k++ {
		obs := core.CollectObservations(ref.Sessions[:k])
		if st.DiscoveryMatches(len(obs), func(i int) (phash.Hash, string) {
			return obs[i].Hash, obs[i].E2LD
		}) {
			matched = k
		}
	}
	if matched < 0 {
		t.Fatal("cancelled run left the store holding a torn (non-prefix) observation sequence")
	}
	t.Logf("cancelled run committed a clean %d-session prefix of %d", matched, total)

	// Goroutine-leak check: the analysis pool, the stream closer and the
	// crawl workers must all have drained.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak after cancelled streaming run: %d before, %d after", before, g)
	}
}

// TestStreamingOverlapCounterNonzero proves the streaming coordinator
// actually overlaps stages: with sessions analyzed and committed while
// the crawl is still running, pipeline_stage_overlap_ns_total must
// accumulate, and stage_active must return to zero once the run ends.
func TestStreamingOverlapCounterNonzero(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	reg := obs.New()
	cfg := quickStreamConfig()
	cfg.Obs = reg
	if _, err := seacma.NewExperiment(cfg).Run(); err != nil {
		t.Fatalf("streaming run: %v", err)
	}
	if v := reg.Counter("pipeline_stage_overlap_ns_total").Value(); v <= 0 {
		t.Fatalf("pipeline_stage_overlap_ns_total = %d, want > 0", v)
	}
	if v := reg.Gauge("stage_active").Value(); v != 0 {
		t.Fatalf("stage_active = %d after the run, want 0", v)
	}
}
