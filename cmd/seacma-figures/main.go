// Command seacma-figures renders the paper's visual artefacts into an
// output directory: the Figure 5/6 screenshot galleries (one exemplar SE
// landing page per category), the benign look-alike families of Section
// 4.3, a Figure 1-style publisher page, and text files with a Figure 3
// backtracking graph and a Figure 4 milking timeline.
//
//	seacma-figures [-out DIR] [-seed N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/btgraph"
	"repro/internal/crawler"
	"repro/internal/imaging"
	"repro/internal/rng"
	"repro/internal/screenshot"
	"repro/internal/secamp"
	"repro/internal/urlx"
	"repro/internal/webtx"
	"repro/internal/worldgen"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// figuresConfig is the assembled run configuration; split from flag
// parsing so tests can cover the -flag → config mapping.
type figuresConfig struct {
	out  string
	seed int64
}

// parseFlags maps the command line onto a figuresConfig.
func parseFlags(args []string) (*figuresConfig, error) {
	fs := flag.NewFlagSet("seacma-figures", flag.ContinueOnError)
	var (
		out  = fs.String("out", "figures", "output directory")
		seed = fs.Int64("seed", 1, "template seed")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return &figuresConfig{out: *out, seed: *seed}, nil
}

func run(args []string, stdout io.Writer) error {
	fc, err := parseFlags(args)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(fc.out, 0o755); err != nil {
		return err
	}
	src := rng.New(fc.seed)

	// Figures 5 & 6: one exemplar per SE category.
	for i, cat := range secamp.AllCategories {
		tmpl := secamp.NewTemplate(cat, i, src.Split(cat.Key()))
		doc := tmpl.BuildDoc("http://example.club/landing", uint64(i)+1)
		img := screenshot.Render(doc, screenshot.Options{})
		if err := writePNG(fc.out, fmt.Sprintf("fig6-%s.png", cat.Key()), img); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "wrote %d category exemplars (Figures 5/6)\n", len(secamp.AllCategories))

	// The benign cluster families of Section 4.3.
	kinds := []struct {
		kind secamp.BenignKind
		name string
	}{
		{secamp.BenignParked, "parked"},
		{secamp.BenignAdultStock, "adult-stock"},
		{secamp.BenignShortener, "shortener"},
		{secamp.BenignAdvertiser, "advertiser"},
	}
	for _, k := range kinds {
		f := secamp.NewBenignFamily("fig-"+k.name, k.kind, 5, src)
		img := screenshot.Render(f.DocForTest(0), screenshot.Options{})
		if err := writePNG(fc.out, fmt.Sprintf("benign-%s.png", k.name), img); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "wrote %d benign family exemplars\n", len(kinds))

	// Figure 1/3/4: a live mini world, one crawl, one milking timeline.
	w := worldgen.Build(worldgen.TinyConfig())
	farm := crawler.New(w.Internet, w.Clock, crawler.Config{Workers: 2, FetchCost: time.Second})
	var graphText string
	var upstream string
	for _, p := range w.Publishers {
		s := farm.RunSession(crawler.Task{Host: p.Host, ClientIP: webtx.IPResidential}, webtx.UAChromeMac)
		for _, l := range s.Landings {
			if w.Truth.CampaignOfAttackDomain(l.URL.Host) == "" {
				continue
			}
			g := btgraph.FromEvents(s.Events)
			graphText = g.Render(l.URL.String())
			if cands, err := g.MilkingCandidates(l.URL.String()); err == nil && len(cands) > 0 {
				upstream = cands[0]
			}
			break
		}
		if graphText != "" {
			break
		}
	}
	if graphText == "" {
		return fmt.Errorf("no SE attack reached; try another seed")
	}
	if err := writeText(fc.out, "fig3-backtracking-graph.txt", graphText); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "wrote fig3-backtracking-graph.txt")

	timeline := fmt.Sprintf("milking %s every 15 minutes:\n", upstream)
	seen := map[string]bool{}
	for i := 0; i < 96; i++ { // one virtual day
		resp, err := w.Internet.RoundTrip(&webtx.Request{
			URL: urlx.MustParse(upstream), UserAgent: webtx.UAChromeMac,
			ClientIP: webtx.IPResidential, Time: w.Clock.Now(),
		})
		if err == nil && resp.Redirect() {
			u := urlx.MustParse(resp.Location)
			if !seen[u.Host] {
				seen[u.Host] = true
				timeline += fmt.Sprintf("  t+%3dm  %s%s\n", i*15, u.Host, u.Path)
			}
		}
		w.Clock.Advance(15 * time.Minute)
	}
	if err := writeText(fc.out, "fig4-milking-timeline.txt", timeline); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote fig4-milking-timeline.txt (%d distinct domains in a day)\n", len(seen))
	return nil
}

func writePNG(dir, name string, img *imaging.Image) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := img.EncodePNG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeText(dir, name, text string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644)
}
