package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	fc, err := parseFlags([]string{"-out", "artifacts", "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if fc.out != "artifacts" || fc.seed != 7 {
		t.Fatalf("out/seed = %q/%d", fc.out, fc.seed)
	}
	fc, err = parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fc.out != "figures" || fc.seed != 1 {
		t.Fatalf("defaults = %q/%d", fc.out, fc.seed)
	}
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag must error")
	}
}

func TestRunWritesFigures(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-out", dir, "-seed", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig6-tech-support.png",
		"benign-parked.png",
		"fig3-backtracking-graph.txt",
		"fig4-milking-timeline.txt",
	} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing artefact %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("artefact %s is empty", name)
		}
	}
	if !strings.Contains(out.String(), "fig4-milking-timeline.txt") {
		t.Fatalf("run output missing summary lines:\n%s", out.String())
	}
}

func TestRunBadOutputDir(t *testing.T) {
	// A file where the output directory should be must surface as an
	// error, not a log.Fatal.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "taken")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", blocker}, &strings.Builder{}); err == nil {
		t.Fatal("run into a non-directory must error")
	}
}
