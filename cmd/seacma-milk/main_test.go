package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	mc, err := parseFlags([]string{"-tiny", "-seed", "3", "-days", "2", "-interval", "30", "-sources", "50", "-metrics", "m.json"})
	if err != nil {
		t.Fatal(err)
	}
	if mc.exp.World.Seed != 3 {
		t.Fatalf("seed = %d", mc.exp.World.Seed)
	}
	if mc.exp.Milker.Duration != 48*time.Hour {
		t.Fatalf("duration = %v", mc.exp.Milker.Duration)
	}
	if mc.exp.Milker.MilkInterval != 30*time.Minute {
		t.Fatalf("interval = %v", mc.exp.Milker.MilkInterval)
	}
	if mc.exp.Milker.MaxSources != 50 {
		t.Fatalf("sources = %d", mc.exp.Milker.MaxSources)
	}
	if mc.exp.SkipMilking {
		t.Fatal("milk config must not skip milking")
	}
	if mc.exp.Obs == nil {
		t.Fatal("metrics flag must allocate a registry")
	}
	mc2, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if mc2.exp.Obs != nil {
		t.Fatal("registry allocated without -metrics")
	}
	if mc2.days != 14 {
		t.Fatalf("default days = %d", mc2.days)
	}
}

// Smoke for the acceptance criterion: a tiny full-pipeline run with
// -metrics emits a JSON snapshot containing per-stage spans in both
// time domains and non-zero crawler and milker counters.
func TestRunTinyEmitsFullMetricsSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny pipeline run")
	}
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-tiny", "-days", "2", "-sources", "40", "-metrics", metrics}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "milking:") {
		t.Fatalf("missing milking summary:\n%s", stdout.String())
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Spans    []struct {
			Name      string `json:"name"`
			WallNS    int64  `json:"wall_ns"`
			VirtualNS int64  `json:"virtual_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}

	spans := map[string]struct{ wall, virt int64 }{}
	for _, sp := range snap.Spans {
		spans[sp.Name] = struct{ wall, virt int64 }{sp.WallNS, sp.VirtualNS}
	}
	for _, want := range []string{"reverse", "crawl", "discover", "attribute", "verify", "milk"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("missing %q span; have %v", want, spans)
		}
	}
	// The milking stage ran 2 virtual days in well under that wall time.
	milk := spans["milk"]
	if milk.virt < int64(48*time.Hour) {
		t.Errorf("milk virtual duration = %v, want >= 48h", time.Duration(milk.virt))
	}
	if milk.wall <= 0 || milk.wall >= int64(48*time.Hour) {
		t.Errorf("milk wall duration = %v", time.Duration(milk.wall))
	}

	sum := func(prefix string) int64 {
		var total int64
		for k, v := range snap.Counters {
			if strings.HasPrefix(k, prefix) {
				total += v
			}
		}
		return total
	}
	if sum("crawler_sessions_total") == 0 {
		t.Error("no crawler session counters")
	}
	if sum("milker_milks_total") == 0 {
		t.Error("no milk request counter")
	}
	if sum("milker_milks_hourly") == 0 {
		t.Error("no per-virtual-hour milk series")
	}
	if sum("milker_gsb_polls_total") == 0 {
		t.Error("no GSB poll counter")
	}
	if sum("webtx_requests_total") == 0 {
		t.Error("no webtx request counters")
	}
}
