// Command seacma-milk runs the full pipeline including the tracking
// (milking) experiment and reports Table 4, the GSB lag, and the
// VirusTotal statistics of the milked binaries.
//
//	seacma-milk [-seed N] [-days N] [-sources N] [-interval MIN]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	var (
		seed     = flag.Int64("seed", 1, "world seed")
		days     = flag.Int("days", 14, "milking horizon in virtual days (paper: 14)")
		sources  = flag.Int("sources", 300, "max milking sources (0 = unbounded; paper: 505)")
		interval = flag.Int("interval", 15, "milking interval in virtual minutes (paper: 15)")
		tiny     = flag.Bool("tiny", false, "use the tiny smoke-test world")
	)
	flag.Parse()

	cfg := seacma.DefaultExperimentConfig()
	if *tiny {
		cfg = seacma.QuickExperimentConfig()
	}
	cfg.World.Seed = *seed
	cfg.Milker.Duration = time.Duration(*days) * 24 * time.Hour
	cfg.Milker.MilkInterval = time.Duration(*interval) * time.Minute
	cfg.Milker.MaxSources = *sources

	exp := seacma.NewExperiment(cfg)
	fmt.Fprintf(os.Stderr, "world: %d publishers, %d campaigns; running full pipeline...\n",
		len(exp.World.Publishers), len(exp.World.Campaigns))
	start := time.Now()
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	m := res.Milking

	fmt.Printf("milking: %d sources x %d virtual days -> %d sessions (wall %v)\n",
		m.Sources, *days, m.Sessions, time.Since(start).Round(time.Second))
	fmt.Printf("fresh attack domains harvested: %d\n", len(m.Domains))
	fmt.Printf("binaries collected: %d (previously known to the scan service: %d)\n",
		len(m.Files), countKnown(m))
	if lag := m.MeanGSBLag(); lag > 0 {
		fmt.Printf("mean GSB listing lag behind milking: %v (%.1f days; paper: >7 days)\n",
			lag.Round(time.Hour), lag.Hours()/24)
	}
	fmt.Println()
	fmt.Print(seacma.FormatTable4(res.Table4()))

	mal, strong := 0, 0
	for _, f := range m.Files {
		if f.Final.Malicious() {
			mal++
		}
		if f.Final.Positives >= 15 {
			strong++
		}
	}
	if len(m.Files) > 0 {
		fmt.Printf("\nafter the 3-month rescan: %d/%d malicious (%.0f%%), %d flagged by >=15 AVs (%.0f%%)\n",
			mal, len(m.Files), pct(mal, len(m.Files)), strong, pct(strong, len(m.Files)))
	}
}

func countKnown(m *seacma.MilkingResult) int {
	n := 0
	for _, f := range m.Files {
		if f.Known {
			n++
		}
	}
	return n
}

func pct(n, total int) float64 { return 100 * float64(n) / float64(total) }
