// Command seacma-milk runs the full pipeline including the tracking
// (milking) experiment and reports Table 4, the GSB lag, and the
// VirusTotal statistics of the milked binaries.
//
//	seacma-milk [-seed N] [-days N] [-sources N] [-interval MIN] [-workers N] [-tiny] [-metrics out.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/profiling"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// milkConfig is the assembled run configuration; split from flag
// parsing so tests can cover the -flag → config mapping.
type milkConfig struct {
	exp        seacma.ExperimentConfig
	days       int
	metrics    string
	cpuProfile string
	memProfile string
}

// parseFlags maps the command line onto a milkConfig.
func parseFlags(args []string) (*milkConfig, error) {
	fs := flag.NewFlagSet("seacma-milk", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "world seed")
		days     = fs.Int("days", 14, "milking horizon in virtual days (paper: 14)")
		sources  = fs.Int("sources", 300, "max milking sources (0 = unbounded; paper: 505)")
		interval = fs.Int("interval", 15, "milking interval in virtual minutes (paper: 15)")
		tiny     = fs.Bool("tiny", false, "use the tiny smoke-test world")
		metrics  = fs.String("metrics", "", "write an observability snapshot (JSON) to this file")
		workers  = fs.Int("workers", 0, "worker count for the parallel stages (0 = per-stage defaults; milking output is identical for any value)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write an allocation profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	cfg := seacma.DefaultExperimentConfig()
	if *tiny {
		cfg = seacma.QuickExperimentConfig()
	}
	cfg.World.Seed = *seed
	cfg.Milker.Duration = time.Duration(*days) * 24 * time.Hour
	cfg.Milker.MilkInterval = time.Duration(*interval) * time.Minute
	cfg.Milker.MaxSources = *sources
	if *workers > 0 {
		cfg.SetWorkers(*workers)
	}
	if *metrics != "" {
		cfg.Obs = obs.New()
	}
	return &milkConfig{
		exp: cfg, days: *days, metrics: *metrics,
		cpuProfile: *cpuProf, memProfile: *memProf,
	}, nil
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	mc, err := parseFlags(args)
	if err != nil {
		return err
	}
	stopProf, err := profiling.Start(mc.cpuProfile, mc.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	exp := seacma.NewExperiment(mc.exp)
	fmt.Fprintf(stderr, "world: %d publishers, %d campaigns; running full pipeline...\n",
		len(exp.World.Publishers), len(exp.World.Campaigns))
	start := time.Now()
	res, err := exp.Run()
	if err != nil {
		return err
	}
	m := res.Milking

	if err := writeMetrics(mc.exp.Obs, mc.metrics, stderr); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "milking: %d sources x %d virtual days -> %d sessions (wall %v)\n",
		m.Sources, mc.days, m.Sessions, time.Since(start).Round(time.Second))
	fmt.Fprintf(stdout, "fresh attack domains harvested: %d\n", len(m.Domains))
	fmt.Fprintf(stdout, "binaries collected: %d (previously known to the scan service: %d)\n",
		len(m.Files), countKnown(m))
	if lag := m.MeanGSBLag(); lag > 0 {
		fmt.Fprintf(stdout, "mean GSB listing lag behind milking: %v (%.1f days; paper: >7 days)\n",
			lag.Round(time.Hour), lag.Hours()/24)
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, seacma.FormatTable4(res.Table4()))

	mal, strong := 0, 0
	for _, f := range m.Files {
		if f.Final.Malicious() {
			mal++
		}
		if f.Final.Positives >= 15 {
			strong++
		}
	}
	if len(m.Files) > 0 {
		fmt.Fprintf(stdout, "\nafter the 3-month rescan: %d/%d malicious (%.0f%%), %d flagged by >=15 AVs (%.0f%%)\n",
			mal, len(m.Files), pct(mal, len(m.Files)), strong, pct(strong, len(m.Files)))
	}
	return nil
}

// writeMetrics dumps the registry snapshot to path (no-op when either
// is unset).
func writeMetrics(reg *obs.Registry, path string, stderr io.Writer) error {
	if reg == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}

func countKnown(m *seacma.MilkingResult) int {
	n := 0
	for _, f := range m.Files {
		if f.Known {
			n++
		}
	}
	return n
}

func pct(n, total int) float64 { return 100 * float64(n) / float64(total) }
