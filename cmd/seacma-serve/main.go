// Command seacma-serve runs the campaign-intelligence pipeline as a
// long-lived daemon: submit analysis jobs over HTTP, poll phase-level
// progress, and query reports, campaigns and clusters from completed
// runs. One process owns one pipeline context (shared capture cache,
// shared ad-script program cache, one obs registry), so repeated jobs
// get warm caches and /metrics aggregates everything.
//
//	seacma-serve [-addr HOST:PORT] [-jobs N] [-queue N] [-metrics out.json]
//
//	curl -d '{"tiny":true,"seed":1}' http://127.0.0.1:8644/v1/jobs
//	curl http://127.0.0.1:8644/v1/jobs/job-000001
//	curl http://127.0.0.1:8644/v1/jobs/job-000001/report
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, in-flight
// jobs finish (cancelled after -drain-timeout), and a final metrics
// snapshot is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// version is stamped by -ldflags "-X main.version=..." in release
// builds; /v1/version also reports the VCS revision when available.
var version = "dev"

func main() {
	log.SetFlags(0)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// serveConfig is the assembled daemon configuration; split from flag
// parsing so tests can cover the -flag → config mapping.
type serveConfig struct {
	addr         string
	jobs         int
	queueCap     int
	metrics      string
	addrFile     string
	drainTimeout time.Duration
	oracleEvery  int
}

// parseFlags maps the command line onto a serveConfig.
func parseFlags(args []string) (*serveConfig, error) {
	fs := flag.NewFlagSet("seacma-serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8644", "listen address (port 0 picks a free port)")
		jobs     = fs.Int("jobs", 2, "concurrent pipeline jobs (worker-pool size)")
		queue    = fs.Int("queue", 16, "queued-job bound; submissions beyond it get 503")
		metrics  = fs.String("metrics", "", "write the final observability snapshot (JSON) to this file on shutdown")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts and smoke tests)")
		drain    = fs.Duration("drain-timeout", time.Minute, "graceful-shutdown budget; in-flight jobs past it are cancelled")
		oracle   = fs.Int("oracle-every", 0, "self-check the incremental campaign stores against a full batch recompute every N observations (0 = never)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return &serveConfig{
		addr: *addr, jobs: *jobs, queueCap: *queue,
		metrics: *metrics, addrFile: *addrFile, drainTimeout: *drain,
		oracleEvery: *oracle,
	}, nil
}

// run serves until ctx is cancelled (the signal handler in main), then
// drains and flushes the final snapshot. It returns only on fatal
// listener errors or after a clean shutdown.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	sc, err := parseFlags(args)
	if err != nil {
		return err
	}
	reg := obs.New()
	srv := serve.New(serve.Config{
		Workers:     sc.jobs,
		QueueCap:    sc.queueCap,
		Obs:         reg,
		Version:     version,
		OracleEvery: sc.oracleEvery,
	})

	ln, err := net.Listen("tcp", sc.addr)
	if err != nil {
		return err
	}
	if sc.addrFile != "" {
		if err := os.WriteFile(sc.addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(stderr, "seacma-serve %s listening on http://%s (%d job workers, queue %d)\n",
		version, ln.Addr(), sc.jobs, sc.queueCap)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain first, HTTP second: clients keep polling job state over the
	// API while in-flight jobs finish; only submissions are refused.
	fmt.Fprintln(stderr, "shutting down: draining jobs (new submissions get 503)...")
	dctx, dcancel := context.WithTimeout(context.Background(), sc.drainTimeout)
	defer dcancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "drain budget %v exceeded: cancelled remaining jobs (%v)\n", sc.drainTimeout, err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil {
		hs.Close()
	}
	<-serveErr // http.ErrServerClosed once Serve unwinds

	if err := flushMetrics(reg, sc.metrics, stderr); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "seacma-serve stopped: %d jobs submitted, %d completed, %d failed\n",
		reg.CounterValue("serve_jobs_submitted_total"),
		reg.CounterValue("serve_jobs_completed_total"),
		reg.CounterValue("serve_jobs_failed_total"))
	return nil
}

// flushMetrics writes the final registry snapshot to path (no-op when
// unset) — the daemon-lifetime counterpart of the one-shot CLIs'
// -metrics flag.
func flushMetrics(reg *obs.Registry, path string, stderr io.Writer) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote final metrics snapshot to %s\n", path)
	return nil
}
