package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
)

func TestParseFlags(t *testing.T) {
	sc, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-jobs", "4", "-queue", "3",
		"-metrics", "m.json", "-addr-file", "a.txt", "-drain-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.addr != "127.0.0.1:0" || sc.jobs != 4 || sc.queueCap != 3 {
		t.Fatalf("addr/jobs/queue = %q/%d/%d", sc.addr, sc.jobs, sc.queueCap)
	}
	if sc.metrics != "m.json" || sc.addrFile != "a.txt" || sc.drainTimeout != 5*time.Second {
		t.Fatalf("metrics/addrFile/drain = %q/%q/%v", sc.metrics, sc.addrFile, sc.drainTimeout)
	}
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag must error")
	}
	sc, err = parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.jobs != 2 || sc.queueCap != 16 || sc.drainTimeout != time.Minute {
		t.Fatalf("defaults = %d/%d/%v", sc.jobs, sc.queueCap, sc.drainTimeout)
	}
}

// TestServeSmoke is the end-to-end service check (the make serve-smoke
// target): boot the real daemon on a random TCP port, submit the
// example seed-list job, poll it to completion over HTTP, and verify
// the fetched report is byte-identical to the one-shot pipeline run on
// the same spec — then shut down gracefully and verify nothing leaked.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full daemon + pipeline run")
	}
	goroutinesBefore := runtime.NumGoroutine()

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	metricsFile := filepath.Join(dir, "metrics.json")
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	runDone := make(chan error, 1)
	go func() {
		runDone <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-jobs", "2", "-metrics", metricsFile,
		}, io.Discard, io.Discard)
	}()

	base := "http://" + waitForAddr(t, addrFile)

	specJSON, err := os.ReadFile(filepath.Join("..", "..", "examples", "serve", "job.json"))
	if err != nil {
		t.Fatalf("example job spec: %v", err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(3 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish in time", view.ID)
		}
		body := httpGet(t, base+"/v1/jobs/"+view.ID)
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "failed" {
			t.Fatalf("job failed: %s", st.Error)
		}
		if st.State == "done" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	got := httpGet(t, base+"/v1/jobs/"+view.ID+"/report")

	// The one-shot equivalent: the exact experiment configuration the
	// daemon derives from the same spec (what `seacma-report -json`
	// writes for those flags).
	var spec serve.JobSpec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		t.Fatal(err)
	}
	exp := seacma.NewExperiment(serve.SpecExperimentConfig(spec))
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.Report().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("service report diverges from one-shot run:\n service %d bytes\n one-shot %d bytes\n%s",
			len(got), want.Len(), firstDiff(got, want.Bytes()))
	}

	var campaigns struct {
		Campaigns []struct {
			Key string `json:"key"`
		} `json:"campaigns"`
	}
	if err := json.Unmarshal(httpGet(t, base+"/v1/campaigns"), &campaigns); err != nil {
		t.Fatal(err)
	}
	if len(campaigns.Campaigns) == 0 {
		t.Fatal("no campaigns exposed after a completed job")
	}
	if !bytes.Contains(httpGet(t, base+"/metrics"), []byte("serve_jobs_completed_total")) {
		t.Fatal("metrics endpoint missing serve counters")
	}

	// Graceful shutdown: signal, wait, and confirm the final snapshot
	// and a quiescent goroutine count.
	stop()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if _, err := os.Stat(metricsFile); err != nil {
		t.Fatalf("final metrics snapshot missing: %v", err)
	}
	waitForGoroutines(t, goroutinesBefore)
}

func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never wrote its address file")
	return ""
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func firstDiff(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	end := func(s []byte) int {
		if i+80 < len(s) {
			return i + 80
		}
		return len(s)
	}
	return fmt.Sprintf("diverges at byte %d:\n  service:  ...%s\n  one-shot: ...%s", i, a[lo:end(a)], b[lo:end(b)])
}

// waitForGoroutines asserts the process returns to its pre-daemon
// goroutine count (scheduler teardown is asynchronous, so poll).
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak after shutdown: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}
