// Command seacma-analyze runs the offline half of the pipeline over a
// stored crawl: load sessions (written by seacma-crawl -out), cluster
// the landing-page hashes, triage the clusters, and print the campaign
// inventory — no synthetic web required.
//
//	seacma-crawl -tiny -out sessions.jsonl
//	seacma-analyze -in sessions.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sessionio"
)

func main() {
	log.SetFlags(0)
	var (
		inFile  = flag.String("in", "", "session file written by seacma-crawl -out (required)")
		eps     = flag.Float64("eps", 0.1, "DBSCAN eps over normalised dhash distance")
		minPts  = flag.Int("minpts", 3, "DBSCAN MinPts")
		minDoms = flag.Int("theta-c", 5, "minimum distinct e2LDs per campaign (θc)")
		workers = flag.Int("workers", 1, "parallelism of the clustering neighbourhood precompute (output is identical for any value)")
	)
	flag.Parse()
	if *inFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*inFile)
	if err != nil {
		log.Fatal(err)
	}
	sessions, err := sessionio.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	landings := 0
	for _, s := range sessions {
		landings += len(s.Landings)
	}
	fmt.Fprintf(os.Stderr, "loaded %d sessions with %d landings\n", len(sessions), landings)

	disc, err := core.Discover(sessions, core.DiscoveryParams{
		Cluster:    cluster.Params{Eps: *eps, MinPts: *minPts},
		MinDomains: *minDoms,
		Workers:    *workers,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clusters: %d (noise %d, below-θc %d)\n", len(disc.Clusters), disc.NoiseCount, disc.FilteredClusters)
	fmt.Printf("SE campaigns: %d, benign: %d\n\n", len(disc.Campaigns()), len(disc.BenignClusters()))
	for _, c := range disc.Campaigns() {
		fmt.Printf("campaign %3d  %-20s  %4d attacks  %3d domains  dhash %s\n",
			c.ID, c.Category.DisplayName(), c.AttackCount(disc.Observations), len(c.Domains), c.Rep)
		if len(c.Signals.ScamPhones) > 0 {
			fmt.Printf("              scam phones: %v\n", c.Signals.ScamPhones)
		}
	}
	if len(disc.BenignClusters()) > 0 {
		fmt.Println("\nbenign clusters:")
		for _, c := range disc.BenignClusters() {
			fmt.Printf("  cluster %3d  %4d pages  %3d domains  parked-score %.2f\n",
				c.ID, c.Signals.Pages, len(c.Domains), c.Signals.MeanParkedScore())
		}
	}
}
