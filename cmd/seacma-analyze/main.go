// Command seacma-analyze runs the offline half of the pipeline over a
// stored crawl: load sessions (written by seacma-crawl -out), cluster
// the landing-page hashes, triage the clusters, and print the campaign
// inventory — no synthetic web required.
//
//	seacma-crawl -tiny -out sessions.jsonl
//	seacma-analyze -in sessions.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sessionio"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// analyzeConfig is the assembled run configuration; split from flag
// parsing so tests can cover the -flag → config mapping.
type analyzeConfig struct {
	inFile     string
	params     core.DiscoveryParams
	metrics    string
	cpuProfile string
	memProfile string
}

// parseFlags maps the command line onto an analyzeConfig.
func parseFlags(args []string) (*analyzeConfig, error) {
	fs := flag.NewFlagSet("seacma-analyze", flag.ContinueOnError)
	var (
		inFile  = fs.String("in", "", "session file written by seacma-crawl -out (required)")
		eps     = fs.Float64("eps", 0.1, "DBSCAN eps over normalised dhash distance")
		minPts  = fs.Int("minpts", 3, "DBSCAN MinPts")
		minDoms = fs.Int("theta-c", 5, "minimum distinct e2LDs per campaign (θc)")
		workers = fs.Int("workers", 1, "parallelism of the clustering neighbourhood precompute (output is identical for any value)")
		metrics = fs.String("metrics", "", "write an observability snapshot (JSON) to this file")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write an allocation profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *inFile == "" {
		fs.Usage()
		return nil, fmt.Errorf("seacma-analyze: -in is required")
	}
	return &analyzeConfig{
		inFile: *inFile,
		params: core.DiscoveryParams{
			Cluster:    cluster.Params{Eps: *eps, MinPts: *minPts},
			MinDomains: *minDoms,
			Workers:    *workers,
		},
		metrics:    *metrics,
		cpuProfile: *cpuProf,
		memProfile: *memProf,
	}, nil
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	ac, err := parseFlags(args)
	if err != nil {
		return err
	}
	stopProf, err := profiling.Start(ac.cpuProfile, ac.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	f, err := os.Open(ac.inFile)
	if err != nil {
		return err
	}
	sessions, err := sessionio.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	landings := 0
	for _, s := range sessions {
		landings += len(s.Landings)
	}
	fmt.Fprintf(stderr, "loaded %d sessions with %d landings\n", len(sessions), landings)

	var reg *obs.Registry
	if ac.metrics != "" {
		reg = obs.New()
		ac.params.Obs = reg
	}
	disc, err := core.Discover(sessions, ac.params)
	if err != nil {
		return err
	}
	if err := writeMetrics(reg, ac.metrics, stderr); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "clusters: %d (noise %d, below-θc %d)\n", len(disc.Clusters), disc.NoiseCount, disc.FilteredClusters)
	fmt.Fprintf(stdout, "SE campaigns: %d, benign: %d\n\n", len(disc.Campaigns()), len(disc.BenignClusters()))
	for _, c := range disc.Campaigns() {
		fmt.Fprintf(stdout, "campaign %3d  %-20s  %4d attacks  %3d domains  dhash %s\n",
			c.ID, c.Category.DisplayName(), c.AttackCount(disc.Observations), len(c.Domains), c.Rep)
		if len(c.Signals.ScamPhones) > 0 {
			fmt.Fprintf(stdout, "              scam phones: %v\n", c.Signals.ScamPhones)
		}
	}
	if len(disc.BenignClusters()) > 0 {
		fmt.Fprintln(stdout, "\nbenign clusters:")
		for _, c := range disc.BenignClusters() {
			fmt.Fprintf(stdout, "  cluster %3d  %4d pages  %3d domains  parked-score %.2f\n",
				c.ID, c.Signals.Pages, len(c.Domains), c.Signals.MeanParkedScore())
		}
	}
	return nil
}

// writeMetrics dumps the registry snapshot to path (no-op when either
// is unset). Shared shape across the seacma binaries.
func writeMetrics(reg *obs.Registry, path string, stderr io.Writer) error {
	if reg == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}
