package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	// Tables 1-3 need no milking; table 4 and the full report do.
	for _, c := range []struct {
		table string
		skip  bool
	}{{"1", true}, {"2", true}, {"3", true}, {"4", false}, {"0", false}} {
		rc, err := parseFlags([]string{"-tiny", "-table", c.table})
		if err != nil {
			t.Fatal(err)
		}
		if rc.exp.SkipMilking != c.skip {
			t.Errorf("table %s: SkipMilking = %v, want %v", c.table, rc.exp.SkipMilking, c.skip)
		}
	}
	rc, err := parseFlags([]string{"-seed", "9", "-json", "rep.json", "-metrics", "m.json"})
	if err != nil {
		t.Fatal(err)
	}
	if rc.seed != 9 || rc.exp.World.Seed != 9 {
		t.Fatalf("seed = %d/%d", rc.seed, rc.exp.World.Seed)
	}
	if rc.jsonFile != "rep.json" {
		t.Fatalf("jsonFile = %q", rc.jsonFile)
	}
	if rc.exp.Obs == nil {
		t.Fatal("metrics flag must allocate a registry")
	}
	if rc2, _ := parseFlags(nil); rc2.exp.Obs != nil {
		t.Fatal("registry allocated without -metrics")
	}
}

// Smoke: the discovery-only report renders Table 1 on a tiny world.
func TestRunTinyTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny pipeline run")
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-tiny", "-table", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "Table 1: SE ad campaign statistics") {
		t.Fatalf("missing Table 1 header:\n%s", out)
	}
	if strings.Contains(out, "Table 4") {
		t.Fatalf("table filter leaked Table 4:\n%s", out)
	}
}
