// Command seacma-report regenerates every table of the paper's
// evaluation from one pipeline run, plus the headline scalars.
//
//	seacma-report [-seed N] [-table N] [-tiny] [-workers N] [-json report.json] [-metrics out.json]
//
// -table selects a single table (1-4); by default all four are printed
// together with the Section 4.3/4.4/4.5 scalars.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/profiling"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// reportConfig is the assembled run configuration; split from flag
// parsing so tests can cover the -flag → config mapping.
type reportConfig struct {
	exp        seacma.ExperimentConfig
	table      int
	jsonFile   string
	metrics    string
	seed       int64
	cpuProfile string
	memProfile string
}

// parseFlags maps the command line onto a reportConfig.
func parseFlags(args []string) (*reportConfig, error) {
	fs := flag.NewFlagSet("seacma-report", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "world seed")
		table    = fs.Int("table", 0, "print only this table (1-4); 0 = everything")
		tiny     = fs.Bool("tiny", false, "use the tiny smoke-test world")
		jsonFile = fs.String("json", "", "also write the full machine-readable report to this file")
		metrics  = fs.String("metrics", "", "write an observability snapshot (JSON) to this file")
		workers  = fs.Int("workers", 0, "worker count for the parallel stages (0 = per-stage defaults; milking/discovery output is identical for any value)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write an allocation profile to this file")
		noIncr   = fs.Bool("no-incremental", false, "cluster with the legacy from-scratch batch DBSCAN instead of the incremental campaign store (output is byte-identical; A/B knob)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	cfg := seacma.DefaultExperimentConfig()
	if *tiny {
		cfg = seacma.QuickExperimentConfig()
	}
	cfg.World.Seed = *seed
	cfg.Milker.MaxSources = 300
	if *workers > 0 {
		cfg.SetWorkers(*workers)
	}
	if *table >= 1 && *table <= 3 {
		cfg.SkipMilking = true
	}
	if *metrics != "" {
		cfg.Obs = obs.New()
	}
	cfg.DisableIncremental = *noIncr
	return &reportConfig{
		exp: cfg, table: *table, jsonFile: *jsonFile, metrics: *metrics, seed: *seed,
		cpuProfile: *cpuProf, memProfile: *memProf,
	}, nil
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	rc, err := parseFlags(args)
	if err != nil {
		return err
	}
	stopProf, err := profiling.Start(rc.cpuProfile, rc.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	exp := seacma.NewExperiment(rc.exp)
	fmt.Fprintf(stderr, "running pipeline on seed %d...\n", rc.seed)
	start := time.Now()
	res, err := exp.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "done in %v\n\n", time.Since(start).Round(time.Second))

	if rc.jsonFile != "" {
		reportSpan := rc.exp.Obs.StartSpan("report")
		rep := res.Report()
		reportSpan.End()
		f, err := os.Create(rc.jsonFile)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote machine-readable report to %s\n", rc.jsonFile)
	}

	if err := writeMetrics(rc.exp.Obs, rc.metrics, stderr); err != nil {
		return err
	}

	show := func(n int) bool { return rc.table == 0 || rc.table == n }

	if show(1) {
		fmt.Fprintln(stdout, "Table 1: SE ad campaign statistics")
		fmt.Fprint(stdout, seacma.FormatTable1(res.Table1()))
		fmt.Fprintln(stdout)
	}
	if show(2) {
		fmt.Fprintln(stdout, "Table 2: top 20 categories of SEACMA ad publisher sites")
		rows := res.Table2(20)
		cells := make([][]string, 0, len(rows))
		for _, r := range rows {
			cells = append(cells, []string{r.Category, fmt.Sprintf("%d", r.Count), fmt.Sprintf("%.2f", r.Percent)})
		}
		fmt.Fprint(stdout, formatSimple([]string{"Category", "# Publisher Domains", "% of Total"}, cells))
		fmt.Fprintln(stdout)
	}
	if show(3) {
		fmt.Fprintln(stdout, "Table 3: SE attacks from each ad network")
		fmt.Fprint(stdout, seacma.FormatTable3(res.Table3()))
		fmt.Fprintln(stdout)
	}
	if show(4) && res.Milking != nil {
		fmt.Fprintln(stdout, "Table 4: tracking SEACMA campaigns (milking)")
		fmt.Fprint(stdout, seacma.FormatTable4(res.Table4()))
		fmt.Fprintln(stdout)
	}

	if rc.table == 0 {
		fmt.Fprintln(stdout, "Scalars:")
		fmt.Fprintf(stdout, "  publishers crawled:        %d\n", len(res.PublisherHosts))
		fmt.Fprintf(stdout, "  crawl sessions:            %d\n", len(res.Sessions))
		fmt.Fprintf(stdout, "  clusters found:            %d\n", len(res.Discovery.Clusters))
		fmt.Fprintf(stdout, "  SE campaigns:              %d\n", len(res.Discovery.Campaigns()))
		fmt.Fprintf(stdout, "  benign clusters:           %d\n", len(res.Discovery.BenignClusters()))
		fmt.Fprintf(stdout, "  SE attack instances:       %d\n", res.SEAttackCount())
		if res.Milking != nil {
			fmt.Fprintf(stdout, "  milking sources:           %d\n", res.Milking.Sources)
			fmt.Fprintf(stdout, "  milking sessions:          %d\n", res.Milking.Sessions)
			fmt.Fprintf(stdout, "  fresh domains milked:      %d\n", len(res.Milking.Domains))
			fmt.Fprintf(stdout, "  binaries milked:           %d\n", len(res.Milking.Files))
			if lag := res.Milking.MeanGSBLag(); lag > 0 {
				fmt.Fprintf(stdout, "  mean GSB lag:              %.1f days\n", lag.Hours()/24)
			}
		}
		fmt.Fprintln(stdout, "  discovered ad networks:")
		for _, d := range res.DiscoverNewNetworks(5) {
			fmt.Fprintf(stdout, "    %-8s snippet var %-16q +%d publishers\n", d.PathToken, d.SnippetVar, len(d.Publishers))
		}
	}
	return nil
}

// writeMetrics dumps the registry snapshot to path (no-op when either
// is unset).
func writeMetrics(reg *obs.Registry, path string, stderr io.Writer) error {
	if reg == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}

func formatSimple(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				out += "  "
			}
			out += fmt.Sprintf("%-*s", widths[i], c)
		}
		out += "\n"
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return out
}
