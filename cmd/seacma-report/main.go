// Command seacma-report regenerates every table of the paper's
// evaluation from one pipeline run, plus the headline scalars.
//
//	seacma-report [-seed N] [-table N] [-tiny]
//
// -table selects a single table (1-4); by default all four are printed
// together with the Section 4.3/4.4/4.5 scalars.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	var (
		seed     = flag.Int64("seed", 1, "world seed")
		table    = flag.Int("table", 0, "print only this table (1-4); 0 = everything")
		tiny     = flag.Bool("tiny", false, "use the tiny smoke-test world")
		jsonFile = flag.String("json", "", "also write the full machine-readable report to this file")
	)
	flag.Parse()

	cfg := seacma.DefaultExperimentConfig()
	if *tiny {
		cfg = seacma.QuickExperimentConfig()
	}
	cfg.World.Seed = *seed
	cfg.Milker.MaxSources = 300
	if *table >= 1 && *table <= 3 {
		cfg.SkipMilking = true
	}

	exp := seacma.NewExperiment(cfg)
	fmt.Fprintf(os.Stderr, "running pipeline on seed %d...\n", *seed)
	start := time.Now()
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Second))

	if *jsonFile != "" {
		patterns := core.PatternSetFromSeeds(exp.Pipeline.Cfg.Seeds)
		rep := core.BuildReport(res.RunResult, patterns, exp.World.GSB, exp.World.Webcat, exp.World.Clock.Now())
		f, err := os.Create(*jsonFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote machine-readable report to %s\n", *jsonFile)
	}

	show := func(n int) bool { return *table == 0 || *table == n }

	if show(1) {
		fmt.Println("Table 1: SE ad campaign statistics")
		fmt.Print(seacma.FormatTable1(res.Table1()))
		fmt.Println()
	}
	if show(2) {
		fmt.Println("Table 2: top 20 categories of SEACMA ad publisher sites")
		rows := res.Table2(20)
		cells := make([][]string, 0, len(rows))
		for _, r := range rows {
			cells = append(cells, []string{r.Category, fmt.Sprintf("%d", r.Count), fmt.Sprintf("%.2f", r.Percent)})
		}
		fmt.Print(formatSimple([]string{"Category", "# Publisher Domains", "% of Total"}, cells))
		fmt.Println()
	}
	if show(3) {
		fmt.Println("Table 3: SE attacks from each ad network")
		fmt.Print(seacma.FormatTable3(res.Table3()))
		fmt.Println()
	}
	if show(4) && res.Milking != nil {
		fmt.Println("Table 4: tracking SEACMA campaigns (milking)")
		fmt.Print(seacma.FormatTable4(res.Table4()))
		fmt.Println()
	}

	if *table == 0 {
		fmt.Println("Scalars:")
		fmt.Printf("  publishers crawled:        %d\n", len(res.PublisherHosts))
		fmt.Printf("  crawl sessions:            %d\n", len(res.Sessions))
		fmt.Printf("  clusters found:            %d\n", len(res.Discovery.Clusters))
		fmt.Printf("  SE campaigns:              %d\n", len(res.Discovery.Campaigns()))
		fmt.Printf("  benign clusters:           %d\n", len(res.Discovery.BenignClusters()))
		fmt.Printf("  SE attack instances:       %d\n", res.SEAttackCount())
		if res.Milking != nil {
			fmt.Printf("  milking sources:           %d\n", res.Milking.Sources)
			fmt.Printf("  milking sessions:          %d\n", res.Milking.Sessions)
			fmt.Printf("  fresh domains milked:      %d\n", len(res.Milking.Domains))
			fmt.Printf("  binaries milked:           %d\n", len(res.Milking.Files))
			if lag := res.Milking.MeanGSBLag(); lag > 0 {
				fmt.Printf("  mean GSB lag:              %.1f days\n", lag.Hours()/24)
			}
		}
		fmt.Println("  discovered ad networks:")
		for _, d := range res.DiscoverNewNetworks(5) {
			fmt.Printf("    %-8s snippet var %-16q +%d publishers\n", d.PathToken, d.SnippetVar, len(d.Publishers))
		}
	}
}

func formatSimple(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				out += "  "
			}
			out += fmt.Sprintf("%-*s", widths[i], c)
		}
		out += "\n"
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return out
}
