package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cc, err := parseFlags([]string{"-tiny", "-seed", "7", "-max", "40", "-json", "-metrics", "m.json"})
	if err != nil {
		t.Fatal(err)
	}
	if !cc.exp.SkipMilking {
		t.Fatal("crawl config must skip milking")
	}
	if cc.exp.World.Seed != 7 {
		t.Fatalf("seed = %d", cc.exp.World.Seed)
	}
	if cc.exp.MaxPublishers != 40 {
		t.Fatalf("max = %d", cc.exp.MaxPublishers)
	}
	if !cc.asJSON {
		t.Fatal("json flag not mapped")
	}
	if cc.metrics != "m.json" || cc.exp.Obs == nil {
		t.Fatal("metrics flag must allocate a registry")
	}
	// Without -metrics the run stays uninstrumented.
	cc2, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cc2.exp.Obs != nil {
		t.Fatal("registry allocated without -metrics")
	}
	if cc2.exp.World.Seed != 1 {
		t.Fatalf("default seed = %d", cc2.exp.World.Seed)
	}
	if _, err := parseFlags([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestPublisherOverride(t *testing.T) {
	cc, err := parseFlags([]string{"-publishers", "120"})
	if err != nil {
		t.Fatal(err)
	}
	if cc.exp.World.SeedPublishers != 120 || cc.exp.World.NewNetPublishers != 12 {
		t.Fatalf("publisher override: %d/%d", cc.exp.World.SeedPublishers, cc.exp.World.NewNetPublishers)
	}
}

// Smoke: a tiny end-to-end crawl emits the campaign JSON and a metrics
// snapshot with the discovery-half spans and non-zero crawler counters.
func TestRunTinySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny pipeline run")
	}
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-tiny", "-max", "60", "-json", "-metrics", metrics}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var campaigns []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &campaigns); err != nil {
		t.Fatalf("campaign JSON: %v\n%s", err, stdout.String())
	}
	if len(campaigns) == 0 {
		t.Fatal("no campaigns discovered")
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Spans    []struct {
			Name   string `json:"name"`
			WallNS int64  `json:"wall_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	stages := map[string]bool{}
	for _, sp := range snap.Spans {
		stages[sp.Name] = true
	}
	for _, want := range []string{"reverse", "crawl", "discover", "attribute"} {
		if !stages[want] {
			t.Errorf("missing %q span; have %v", want, stages)
		}
	}
	var crawlerTotal int64
	for k, v := range snap.Counters {
		if len(k) >= 8 && k[:8] == "crawler_" {
			crawlerTotal += v
		}
	}
	if crawlerTotal == 0 {
		t.Fatalf("no crawler counters in snapshot: %v", snap.Counters)
	}
}
