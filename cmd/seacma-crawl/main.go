// Command seacma-crawl runs the discovery half of the pipeline: build a
// synthetic web, reverse the seed ad networks into a publisher pool,
// crawl it, cluster the landing-page screenshots and triage the clusters
// into SE campaigns.
//
//	seacma-crawl [-seed N] [-publishers N] [-scale F] [-max N] [-tiny] [-json] [-metrics out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sessionio"
	"repro/internal/worldgen"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// crawlConfig is the assembled run configuration; split from flag
// parsing so tests can cover the -flag → config mapping.
type crawlConfig struct {
	exp        seacma.ExperimentConfig
	asJSON     bool
	outFile    string
	metrics    string
	cpuProfile string
	memProfile string
}

// parseFlags maps the command line onto a crawlConfig.
func parseFlags(args []string) (*crawlConfig, error) {
	fs := flag.NewFlagSet("seacma-crawl", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "world seed")
		publishers = fs.Int("publishers", 0, "seed publishers (0 = config default)")
		scale      = fs.Float64("scale", 1.0, "scale factor applied to the default world")
		maxPubs    = fs.Int("max", 0, "bound the crawl pool (0 = all)")
		tiny       = fs.Bool("tiny", false, "use the tiny smoke-test world")
		asJSON     = fs.Bool("json", false, "emit the campaign list as JSON")
		outFile    = fs.String("out", "", "write the crawl sessions to this file (JSONL) for offline analysis with seacma-analyze")
		metrics    = fs.String("metrics", "", "write an observability snapshot (JSON) to this file")
		workers    = fs.Int("workers", 0, "worker count for the crawl farm and clustering (0 = per-stage defaults)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	cfg := seacma.DefaultExperimentConfig()
	if *tiny {
		cfg = seacma.QuickExperimentConfig()
	}
	cfg.SkipMilking = true
	if *workers > 0 {
		cfg.SetWorkers(*workers)
	}
	cfg.World.Seed = *seed
	cfg.World = scaleWorld(cfg.World, *scale)
	if *publishers > 0 {
		cfg.World.SeedPublishers = *publishers
		cfg.World.NewNetPublishers = *publishers / 10
	}
	cfg.MaxPublishers = *maxPubs
	if *metrics != "" {
		cfg.Obs = obs.New()
	}
	return &crawlConfig{
		exp: cfg, asJSON: *asJSON, outFile: *outFile, metrics: *metrics,
		cpuProfile: *cpuProfile, memProfile: *memProfile,
	}, nil
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	cc, err := parseFlags(args)
	if err != nil {
		return err
	}
	stopProf, err := profiling.Start(cc.cpuProfile, cc.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	exp := seacma.NewExperiment(cc.exp)
	fmt.Fprintf(stderr, "world: %d publishers, %d campaigns; crawling...\n",
		len(exp.World.Publishers), len(exp.World.Campaigns))

	res, err := exp.Run()
	if err != nil {
		return err
	}

	if cc.outFile != "" {
		f, err := os.Create(cc.outFile)
		if err != nil {
			return err
		}
		if err := sessionio.Write(f, res.Sessions); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d sessions to %s\n", len(res.Sessions), cc.outFile)
	}

	if err := writeMetrics(cc.exp.Obs, cc.metrics, stderr); err != nil {
		return err
	}

	if cc.asJSON {
		type campaignJSON struct {
			ID       int      `json:"id"`
			Category string   `json:"category"`
			Attacks  int      `json:"attacks"`
			Domains  []string `json:"domains"`
		}
		var out []campaignJSON
		for _, c := range res.Discovery.Campaigns() {
			out = append(out, campaignJSON{
				ID:       c.ID,
				Category: string(c.Category),
				Attacks:  c.AttackCount(res.Discovery.Observations),
				Domains:  c.Domains,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Fprintf(stdout, "crawled %d publishers (%d sessions)\n", len(res.PublisherHosts), len(res.Sessions))
	fmt.Fprintf(stdout, "clusters: %d -> %d SE campaigns, %d benign, %d below θc\n",
		len(res.Discovery.Clusters), len(res.Discovery.Campaigns()),
		len(res.Discovery.BenignClusters()), res.Discovery.FilteredClusters)
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, seacma.FormatTable1(res.Table1()))
	return nil
}

// writeMetrics dumps the registry snapshot to path (no-op when either
// is unset). Shared shape across the seacma binaries.
func writeMetrics(reg *obs.Registry, path string, stderr io.Writer) error {
	if reg == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}

func scaleWorld(cfg worldgen.Config, f float64) worldgen.Config {
	if f == 1.0 || f <= 0 {
		return cfg
	}
	cfg.SeedPublishers = int(float64(cfg.SeedPublishers) * f)
	cfg.NewNetPublishers = int(float64(cfg.NewNetPublishers) * f)
	cfg.Advertisers = int(float64(cfg.Advertisers) * f)
	if cfg.SeedPublishers < 50 {
		cfg.SeedPublishers = 50
	}
	if cfg.NewNetPublishers < 5 {
		cfg.NewNetPublishers = 5
	}
	if cfg.Advertisers < 20 {
		cfg.Advertisers = 20
	}
	return cfg
}
