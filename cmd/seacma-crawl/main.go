// Command seacma-crawl runs the discovery half of the pipeline: build a
// synthetic web, reverse the seed ad networks into a publisher pool,
// crawl it, cluster the landing-page screenshots and triage the clusters
// into SE campaigns.
//
//	seacma-crawl [-seed N] [-publishers N] [-scale F] [-max N] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/sessionio"
	"repro/internal/worldgen"
)

func main() {
	log.SetFlags(0)
	var (
		seed       = flag.Int64("seed", 1, "world seed")
		publishers = flag.Int("publishers", 0, "seed publishers (0 = config default)")
		scale      = flag.Float64("scale", 1.0, "scale factor applied to the default world")
		maxPubs    = flag.Int("max", 0, "bound the crawl pool (0 = all)")
		asJSON     = flag.Bool("json", false, "emit the campaign list as JSON")
		outFile    = flag.String("out", "", "write the crawl sessions to this file (JSONL) for offline analysis with seacma-analyze")
	)
	flag.Parse()

	cfg := seacma.DefaultExperimentConfig()
	cfg.SkipMilking = true
	cfg.World.Seed = *seed
	cfg.World = scaleWorld(cfg.World, *scale)
	if *publishers > 0 {
		cfg.World.SeedPublishers = *publishers
		cfg.World.NewNetPublishers = *publishers / 10
	}
	cfg.MaxPublishers = *maxPubs

	exp := seacma.NewExperiment(cfg)
	fmt.Fprintf(os.Stderr, "world: %d publishers, %d campaigns; crawling...\n",
		len(exp.World.Publishers), len(exp.World.Campaigns))

	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := sessionio.Write(f, res.Sessions); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d sessions to %s\n", len(res.Sessions), *outFile)
	}

	if *asJSON {
		type campaignJSON struct {
			ID       int      `json:"id"`
			Category string   `json:"category"`
			Attacks  int      `json:"attacks"`
			Domains  []string `json:"domains"`
		}
		var out []campaignJSON
		for _, c := range res.Discovery.Campaigns() {
			out = append(out, campaignJSON{
				ID:       c.ID,
				Category: string(c.Category),
				Attacks:  c.AttackCount(res.Discovery.Observations),
				Domains:  c.Domains,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("crawled %d publishers (%d sessions)\n", len(res.PublisherHosts), len(res.Sessions))
	fmt.Printf("clusters: %d -> %d SE campaigns, %d benign, %d below θc\n",
		len(res.Discovery.Clusters), len(res.Discovery.Campaigns()),
		len(res.Discovery.BenignClusters()), res.Discovery.FilteredClusters)
	fmt.Println()
	fmt.Print(seacma.FormatTable1(res.Table1()))
}

func scaleWorld(cfg worldgen.Config, f float64) worldgen.Config {
	if f == 1.0 || f <= 0 {
		return cfg
	}
	cfg.SeedPublishers = int(float64(cfg.SeedPublishers) * f)
	cfg.NewNetPublishers = int(float64(cfg.NewNetPublishers) * f)
	cfg.Advertisers = int(float64(cfg.Advertisers) * f)
	if cfg.SeedPublishers < 50 {
		cfg.SeedPublishers = 50
	}
	if cfg.NewNetPublishers < 5 {
		cfg.NewNetPublishers = 5
	}
	if cfg.Advertisers < 20 {
		cfg.Advertisers = 20
	}
	return cfg
}
