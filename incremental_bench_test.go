package seacma

// Perf-contract benches for the incremental campaign store: absorbing
// a tranche of fresh observations into an existing store must pay an
// order of magnitude fewer Hamming verifications than re-clustering
// the whole log from scratch — that asymmetry is the store's reason to
// exist, so `make bench-check` guards it (append distance calls must
// stay under 20% of a full rebuild's).

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campstore"
	"repro/internal/phash"
)

// incrementalCorpus builds a deterministic steady-state observation
// stream: nc ε-dense cluster neighbourhoods of `per` members (≤2 bit
// flips around a random centre) plus `noise` isolated hashes.
func incrementalCorpus(nc, per, noise int) []campstore.Event {
	r := rand.New(rand.NewSource(42))
	tick := time.Unix(1600000000, 0).UTC()
	var evs []campstore.Event
	dom := 0
	add := func(h phash.Hash, src string) {
		evs = append(evs, campstore.Event{
			Hash: h, E2LD: fmt.Sprintf("d%04d.example", dom),
			Tick: tick, Source: src,
		})
		dom++
	}
	for c := 0; c < nc; c++ {
		centre := phash.Hash{Hi: r.Uint64(), Lo: r.Uint64()}
		add(centre, campstore.SourceCrawl)
		for m := 1; m < per; m++ {
			add(centre.FlipBits(r.Intn(128), r.Intn(128)), campstore.SourceCrawl)
		}
	}
	for i := 0; i < noise; i++ {
		add(phash.Hash{Hi: r.Uint64(), Lo: r.Uint64()}, campstore.SourceCrawl)
	}
	return evs
}

// perturbedBatch derives one tranche of fresh sightings from the
// corpus: new hashes ≤3 flips from existing members (still inside
// their cluster's ε-neighbourhood), on the same domains, at new ticks.
func perturbedBatch(corpus []campstore.Event, n, round int) []campstore.Event {
	r := rand.New(rand.NewSource(int64(7 + round)))
	batch := make([]campstore.Event, 0, n)
	for j := 0; j < n; j++ {
		src := corpus[r.Intn(len(corpus))]
		batch = append(batch, campstore.Event{
			Hash:   src.Hash.FlipBits(r.Intn(128), r.Intn(128), r.Intn(128)),
			E2LD:   src.E2LD,
			Tick:   src.Tick.Add(time.Duration(round*n+j+1) * time.Minute),
			Source: campstore.SourceMilk,
		})
	}
	return batch
}

const (
	incrClusters  = 80
	incrPerClust  = 8
	incrNoise     = 240
	incrBatchSize = 25
)

// BenchmarkIncrementalCluster_Append measures the steady state:
// absorbing one 25-event tranche into a store that already holds the
// ~880-point corpus. distance-calls counts the full Hamming
// verifications per tranche — only the new hashes in the tranche pay
// any; deriving the updated labels afterwards pays zero.
func BenchmarkIncrementalCluster_Append(b *testing.B) {
	corpus := incrementalCorpus(incrClusters, incrPerClust, incrNoise)
	st := campstore.New(campstore.Config{})
	if _, err := st.AppendBatch(corpus); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := st.DistanceCalls()
	for i := 0; i < b.N; i++ {
		if _, err := st.AppendBatch(perturbedBatch(corpus, incrBatchSize, i)); err != nil {
			b.Fatal(err)
		}
		st.LiveLabels()
	}
	b.StopTimer()
	b.ReportMetric(float64(st.DistanceCalls()-start)/float64(b.N), "distance-calls")
	b.ReportMetric(float64(st.Stats().LiveClusters), "clusters")
}

// BenchmarkIncrementalCluster_FullRebuild is the alternative the store
// replaces: to absorb the same 25-event tranche, re-cluster the whole
// log (corpus + tranche) from scratch. Its distance-calls is the
// per-tranche cost the append path is measured against.
func BenchmarkIncrementalCluster_FullRebuild(b *testing.B) {
	corpus := incrementalCorpus(incrClusters, incrPerClust, incrNoise)
	batch := perturbedBatch(corpus, incrBatchSize, 0)
	b.ResetTimer()
	var calls int64
	for i := 0; i < b.N; i++ {
		st := campstore.New(campstore.Config{})
		if _, err := st.AppendBatch(corpus); err != nil {
			b.Fatal(err)
		}
		if _, err := st.AppendBatch(batch); err != nil {
			b.Fatal(err)
		}
		st.LiveLabels()
		calls += st.DistanceCalls()
	}
	b.StopTimer()
	b.ReportMetric(float64(calls)/float64(b.N), "distance-calls")
}

// BenchmarkIncrementalCluster_Merge isolates the most intrusive
// incremental transition: a bridge observation lands exactly ε from
// two so-far-separate clusters and their components union. The labels
// of every member change, yet the append pays only the bridge hash's
// own index probe.
func BenchmarkIncrementalCluster_Merge(b *testing.B) {
	a := phash.Hash{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	farBits := make([]int, 24)
	for i := range farBits {
		farBits[i] = 64 + i
	}
	c := a.FlipBits(farBits...)
	tick := time.Unix(1600000000, 0).UTC()
	stream := []campstore.Event{
		{Hash: a, E2LD: "left.example", Tick: tick, Source: campstore.SourceCrawl},
		{Hash: c, E2LD: "right.example", Tick: tick, Source: campstore.SourceCrawl},
	}
	for i := 0; i < 6; i++ {
		stream = append(stream,
			campstore.Event{Hash: a.FlipBits(i), E2LD: fmt.Sprintf("left%d.example", i), Tick: tick, Source: campstore.SourceCrawl},
			campstore.Event{Hash: c.FlipBits(i), E2LD: fmt.Sprintf("right%d.example", i), Tick: tick, Source: campstore.SourceCrawl})
	}
	bridge := campstore.Event{Hash: a.FlipBits(farBits[:12]...), E2LD: "bridge.example", Tick: tick, Source: campstore.SourceMilk}
	var calls, merges int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := campstore.New(campstore.Config{})
		if _, err := st.AppendBatch(stream); err != nil {
			b.Fatal(err)
		}
		before, pre := st.Stats(), st.DistanceCalls()
		if before.LiveClusters != 2 {
			b.Fatalf("pre-merge clusters = %d, want 2", before.LiveClusters)
		}
		b.StartTimer()
		if _, err := st.Append(bridge); err != nil {
			b.Fatal(err)
		}
		st.LiveLabels()
		b.StopTimer()
		after := st.Stats()
		if after.LiveClusters != 1 || after.Merges-before.Merges == 0 {
			b.Fatalf("post-merge clusters = %d, merges += %d", after.LiveClusters, after.Merges-before.Merges)
		}
		calls += st.DistanceCalls() - pre
		merges += after.Merges - before.Merges
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(calls)/float64(b.N), "distance-calls")
	b.ReportMetric(float64(merges)/float64(b.N), "merges")
}

// benchmarkStoreAppend ingests the full steady-state corpus into a
// fresh store with `workers` concurrent appenders, each submitting
// every workers'th 25-event tranche via AppendBatch. One op = one full
// corpus ingest, so ns/op across the W variants is the scaling curve
// of the band-sharded index + staged batch commit: `make bench-check`
// requires W8 ≥ 2x faster than W1 on hosts with ≥4 CPUs.
func benchmarkStoreAppend(b *testing.B, workers int) {
	corpus := incrementalCorpus(incrClusters, incrPerClust, incrNoise)
	var tranches [][]campstore.Event
	for off := 0; off < len(corpus); off += incrBatchSize {
		end := off + incrBatchSize
		if end > len(corpus) {
			end = len(corpus)
		}
		tranches = append(tranches, corpus[off:end])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := campstore.New(campstore.Config{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for t := w; t < len(tranches); t += workers {
					if _, err := st.AppendBatch(tranches[t]); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		st.LiveLabels()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(corpus)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkStoreAppend_W1(b *testing.B) { benchmarkStoreAppend(b, 1) }
func BenchmarkStoreAppend_W4(b *testing.B) { benchmarkStoreAppend(b, 4) }
func BenchmarkStoreAppend_W8(b *testing.B) { benchmarkStoreAppend(b, 8) }

// BenchmarkStoreMixed_ReadHeavy runs one writer ingesting the corpus
// while three readers continuously walk the lock-free snapshot surface
// (labels, pagination, stats, campaign projections). The contract is
// that reads never block writes: ns/op should track the W1 append
// bench, and reads/op records how much snapshot traffic rode along.
func BenchmarkStoreMixed_ReadHeavy(b *testing.B) {
	corpus := incrementalCorpus(incrClusters, incrPerClust, incrNoise)
	b.ReportAllocs()
	var reads atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := campstore.New(campstore.Config{})
		stop := make(chan struct{})
		var readWG sync.WaitGroup
		for r := 0; r < 3; r++ {
			readWG.Add(1)
			go func() {
				defer readWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					st.LiveLabels()
					st.Events(0, 32)
					st.Stats()
					st.LiveCampaigns()
					reads.Add(1)
				}
			}()
		}
		for off := 0; off < len(corpus); off += incrBatchSize {
			end := off + incrBatchSize
			if end > len(corpus) {
				end = len(corpus)
			}
			if _, err := st.AppendBatch(corpus[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		close(stop)
		readWG.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(reads.Load())/float64(b.N), "reads")
}
