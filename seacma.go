// Package seacma is the public API of this repository: a full
// reproduction of "What You See is NOT What You Get: Discovering and
// Tracking Social Engineering Attack Campaigns" (Vadrevu & Perdisci,
// IMC 2019).
//
// The package glues together the two halves of the reproduction:
//
//   - worldgen, the synthetic web standing in for the live Internet the
//     paper measured (ad networks, SE campaigns, publishers, Safe
//     Browsing, VirusTotal), and
//   - core, the paper's measurement pipeline (seed reversal, crawler
//     farm, screenshot clustering, campaign triage, milking, ad
//     attribution).
//
// A typical use builds an Experiment and runs it:
//
//	exp := seacma.NewExperiment(seacma.DefaultExperimentConfig())
//	result, err := exp.Run()
//	fmt.Print(seacma.FormatTable1(result.Table1()))
//
// Everything is deterministic per seed and runs on a virtual clock, so a
// 14-day milking campaign completes in seconds.
package seacma

import (
	"context"
	"time"

	"repro/internal/adnet"
	"repro/internal/adscript"
	"repro/internal/campstore"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/obs"
	"repro/internal/screenshot"
	"repro/internal/webcat"
	"repro/internal/worldgen"
)

// Re-exported pipeline vocabulary, so downstream users need only this
// package for common workflows.
type (
	// Category is an SE-attack category (Table 1 rows).
	Category = core.Category
	// SeedNetwork is an analyst-curated seed ad network.
	SeedNetwork = core.SeedNetwork
	// DiscoveredCampaign is one SEACMA campaign found by clustering.
	DiscoveredCampaign = core.DiscoveredCampaign
	// MilkSource is one verified milkable (URL, UA) pair.
	MilkSource = core.MilkSource
	// MilkingResult aggregates a tracking run.
	MilkingResult = core.MilkingResult
	// Attribution links one landing page to an ad network.
	Attribution = core.Attribution
	// Table1Row .. Table4Row are the paper's table rows.
	Table1Row = core.Table1Row
	Table3Row = core.Table3Row
	Table4Row = core.Table4Row
)

// Re-exported formatting helpers.
var (
	FormatTable1 = core.FormatTable1
	FormatTable3 = core.FormatTable3
	FormatTable4 = core.FormatTable4
)

// ExperimentConfig sizes a full reproduction run.
type ExperimentConfig struct {
	// World sizes the synthetic web.
	World worldgen.Config
	// Crawler configures the farm; zero values take paper defaults.
	Crawler crawler.Config
	// Discovery defaults to the paper's eps=0.1, MinPts=3, θc=5.
	Discovery core.DiscoveryParams
	// Milker defaults to the paper's 15-minute / 14-day setup.
	Milker core.MilkerConfig
	// MaxPublishers bounds the crawl pool (0 = all).
	MaxPublishers int
	// SkipMilking stops after discovery and attribution.
	SkipMilking bool
	// Obs, when non-nil, instruments the whole run: per-stage spans
	// (wall + virtual time), crawler/discovery/milker counters, and
	// webtx request counts by IP class. NewExperiment binds it to the
	// world's virtual clock. Nil = zero-overhead no-op.
	Obs *obs.Registry
	// Capture, when non-nil, is the content-addressed capture cache the
	// pipeline uses instead of creating its own. A long-lived owner (the
	// seacma-serve daemon) passes one instance to every experiment so
	// render→dhash work is shared across jobs; the cache is
	// content-addressed, so sharing never changes any result.
	Capture *screenshot.Cache
	// Scripts is the analogous shared compile-once ad-script program
	// cache.
	Scripts *adscript.ProgramCache
	// Campaigns, when non-nil, is the incremental campaign store the
	// run appends to and clusters through (crawl observations at
	// discovery, verified sightings during milking). A long-lived owner
	// (the seacma-serve daemon) passes one store per world so repeat
	// runs reuse the absorbed state; left nil, discovery creates a
	// run-private store, reachable afterwards via
	// Result.Discovery.Store.
	Campaigns *campstore.Store
	// DisableIncremental pins discovery to the legacy batch clustering
	// (reports are byte-identical either way — the knob exists for A/B
	// verification).
	DisableIncremental bool
	// DisableStreaming pins the run to the legacy phased execution
	// (five serial stages) instead of the streaming coordinator that
	// overlaps crawl, discovery and attribution. Reports are
	// byte-identical either way — the knob exists for A/B verification.
	DisableStreaming bool
}

// DefaultExperimentConfig is the 1/8-scale default world with the
// paper's pipeline parameters.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		World:     worldgen.DefaultConfig(),
		Discovery: core.PaperDiscoveryParams,
		Milker:    core.PaperMilkerConfig(),
	}
}

// QuickExperimentConfig is a fast smoke-scale configuration (tiny world,
// 2-day milking) for examples and tests.
func QuickExperimentConfig() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.World = worldgen.TinyConfig()
	cfg.Milker.Duration = 2 * 24 * time.Hour
	cfg.Milker.GSBExtra = 2 * 24 * time.Hour
	cfg.Milker.MaxSources = 60
	return cfg
}

// SetWorkers sets the worker count of every parallel stage — crawl farm,
// milking engine, discovery neighbourhood precompute — in one call (the
// cmd tools' -workers flag lands here). Milking and discovery results
// are byte-identical for any value; the crawl stage's session ordering
// is worker-count dependent, so runs that must be reproducible across
// machines pin crawl workers to 1.
func (c *ExperimentConfig) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.Crawler.Workers = n
	c.Milker.Workers = n
	c.Discovery.Workers = n
}

// Experiment couples a generated world with a pipeline bound to it.
type Experiment struct {
	Cfg      ExperimentConfig
	World    *worldgen.World
	Pipeline *core.Pipeline
}

// NewExperiment builds the world and the pipeline.
func NewExperiment(cfg ExperimentConfig) *Experiment {
	w := worldgen.Build(cfg.World)
	cfg.Obs.SetVirtualNow(w.Clock.Now)
	w.Internet.SetObs(cfg.Obs)
	p := core.NewPipeline(core.PipelineConfig{
		Seeds:              SeedsFromSpecs(w),
		Crawler:            cfg.Crawler,
		Discovery:          cfg.Discovery,
		Milker:             cfg.Milker,
		MaxPublishers:      cfg.MaxPublishers,
		Obs:                cfg.Obs,
		Capture:            cfg.Capture,
		Scripts:            cfg.Scripts,
		Campaigns:          cfg.Campaigns,
		DisableIncremental: cfg.DisableIncremental,
		DisableStreaming:   cfg.DisableStreaming,
	}, w.Internet, w.Clock, w.Search, w.GSB, w.VT, w.Webcat)
	return &Experiment{Cfg: cfg, World: w, Pipeline: p}
}

// SeedsFromSpecs derives the analyst seed list from the world's seed
// networks — the counterpart of the paper's ~15-minutes-per-network
// manual invariant derivation (Section 3.1). Only the 11 seed networks
// are included; the three discovered networks stay unknown to the
// pipeline until the Section 4.4 analysis finds them.
func SeedsFromSpecs(w *worldgen.World) []core.SeedNetwork {
	var out []core.SeedNetwork
	for _, n := range w.Networks {
		if !n.Spec.Seed {
			continue
		}
		out = append(out, core.SeedNetwork{
			Name:                n.Name(),
			Patterns:            n.Patterns(),
			SearchSnippet:       n.SearchSnippet(),
			ResidentialRequired: n.Spec.ResidentialOnly,
		})
	}
	return out
}

// Result is a completed experiment with report accessors.
type Result struct {
	*core.RunResult
	exp *Experiment
}

// Run executes the full pipeline. With SkipMilking the milking stage is
// omitted and Milking stays nil. The streaming coordinator is the
// default execution (crawl, discovery and attribution overlap); set
// DisableStreaming for the legacy phased path — results are
// byte-identical either way.
func (e *Experiment) Run() (*Result, error) {
	return e.RunStream(context.Background(), nil)
}

// ProgressEvent re-exports the streaming pipeline's progress
// notification: a phase transition or a per-session crawl commit tick.
type ProgressEvent = core.ProgressEvent

// RunStream executes the pipeline under ctx through the streaming
// coordinator, invoking onProgress (when non-nil) on every phase
// transition and per-session commit. With DisableStreaming set it runs
// the phased path instead, forwarding phase transitions only. Phase
// names match the obs span names; cancellation semantics are the same
// as RunPhased.
func (e *Experiment) RunStream(ctx context.Context, onProgress func(ProgressEvent)) (*Result, error) {
	if e.Cfg.DisableStreaming {
		var onPhase func(string)
		if onProgress != nil {
			onPhase = func(name string) { onProgress(ProgressEvent{Phase: name}) }
		}
		return e.RunPhased(ctx, onPhase)
	}
	res, err := e.Pipeline.RunStream(ctx, core.StreamOptions{
		SkipMilking: e.Cfg.SkipMilking,
		OnProgress:  onProgress,
	})
	if err != nil {
		return nil, err
	}
	return &Result{RunResult: res, exp: e}, nil
}

// RunPhased executes the pipeline under ctx with the legacy five-stage
// serial schedule, invoking onPhase (when non-nil) as each Figure-2
// stage begins. The phase names match the obs span names — reverse,
// crawl, discover, attribute, milk — so a progress consumer (the
// seacma-serve job engine) can correlate them with the span log.
// Cancellation is observed between stages, in the crawl session feed
// and at every milking virtual tick; a cancelled run returns ctx.Err()
// and no Result.
func (e *Experiment) RunPhased(ctx context.Context, onPhase func(phase string)) (*Result, error) {
	phase := func(name string) {
		if onPhase != nil {
			onPhase(name)
		}
	}
	out := &core.RunResult{}
	phase("reverse")
	out.PublisherHosts, out.NetworksByHost = e.Pipeline.Reverse()
	if len(out.PublisherHosts) == 0 {
		return nil, core.Errorf("seed reversal found no publishers")
	}
	phase("crawl")
	sessions, err := e.Pipeline.CrawlContext(ctx, out.NetworksByHost)
	if err != nil {
		return nil, err
	}
	out.Sessions = sessions
	phase("discover")
	disc, err := e.Pipeline.Discover(out.Sessions)
	if err != nil {
		return nil, err
	}
	out.Discovery = disc
	phase("attribute")
	out.Attributions = e.Pipeline.Attribute(out.Sessions)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !e.Cfg.SkipMilking {
		phase("milk")
		sources, milking, err := e.Pipeline.MilkContext(ctx, out.Sessions, disc)
		if err != nil {
			return nil, err
		}
		out.Sources = sources
		out.Milking = milking
	}
	return &Result{RunResult: out, exp: e}, nil
}

// Report assembles the full machine-readable report of the run — every
// table plus the headline scalars — exactly as the one-shot CLIs write
// it. GeneratedAt is the world's virtual clock, so the same seed and
// configuration serialize to byte-identical JSON no matter where or
// when the run executed.
func (r *Result) Report() core.Report {
	patterns := core.PatternSetFromSeeds(r.exp.Pipeline.Cfg.Seeds)
	return core.BuildReport(r.RunResult, patterns, r.exp.World.GSB, r.exp.World.Webcat, r.exp.World.Clock.Now())
}

// Table1 builds the paper's Table 1 from the run.
func (r *Result) Table1() []core.Table1Row {
	return core.Table1(r.Discovery, r.exp.World.GSB, r.exp.World.Clock.Now())
}

// Table2 builds the paper's Table 2 (top-N publisher categories).
func (r *Result) Table2(topN int) []webcat.CategoryCount {
	return core.Table2(r.Discovery, r.Sessions, r.exp.World.Webcat, topN)
}

// Table3 builds the paper's Table 3 (per-network attribution).
func (r *Result) Table3() []core.Table3Row {
	patterns := core.PatternSetFromSeeds(r.exp.Pipeline.Cfg.Seeds)
	return core.Table3(r.Attributions, patterns, r.IsSE)
}

// Table4 builds the paper's Table 4 (milking); nil without milking.
func (r *Result) Table4() []core.Table4Row {
	if r.Milking == nil {
		return nil
	}
	return core.Table4(r.Milking)
}

// DiscoverNewNetworks runs the Section 4.4 analysis over the run's
// Unknown-attributed attacks.
func (r *Result) DiscoverNewNetworks(minSupport int) []core.DiscoveredNetwork {
	knownVars := map[string]bool{}
	for _, s := range r.exp.Pipeline.Cfg.Seeds {
		for _, p := range s.Patterns {
			if p.BodyToken != "" {
				v := p.BodyToken
				v = trimPrefixSuffix(v, "let ", " =")
				knownVars[v] = true
			}
		}
	}
	return core.DiscoverNewNetworks(r.Attributions, r.Sessions, knownVars, r.exp.World.Search, minSupport)
}

func trimPrefixSuffix(s, prefix, suffix string) string {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		s = s[len(prefix):]
	}
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		s = s[:len(s)-len(suffix)]
	}
	return s
}

// SeedSpecCount returns the number of seed networks (11 in the paper).
func SeedSpecCount() int { return len(adnet.SeedSpecs()) }
